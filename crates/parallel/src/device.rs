//! A simulated accelerator ("device") standing in for the NVIDIA V100 GPUs of
//! Summit.
//!
//! Physics kernels always execute for real on the host — the *answers* are
//! real — but when they are launched through
//! [`crate::exec::ExecSpace::Device`] the device also charges a calibrated
//! analytic cost to a set of per-stream clocks. The cost model captures the
//! performance phenomena the paper reports:
//!
//! * **kernel launch latency** — small boxes are dominated by launch overhead;
//! * **latency hiding / occupancy** — throughput ramps up with the number of
//!   zones in a launch and saturates near ~100³ zones (§IV-A);
//! * **register pressure** — kernels whose per-thread state exceeds the
//!   register file spill and lose occupancy (§III, §IV-B);
//! * **device allocation latency** — `cudaMalloc`/`cudaFree` are device-wide
//!   synchronizing and orders of magnitude slower than host allocation, which
//!   motivates the caching pool allocator (§III);
//! * **memory oversubscription** — once the working set exceeds device memory,
//!   unified-memory eviction collapses effective bandwidth (§IV-A).

use std::sync::{Arc, Mutex};

/// Static characteristics of a simulated accelerator.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Human-readable name for reports.
    pub name: String,
    /// Peak throughput, in zones per microsecond, for a kernel of unit
    /// [`KernelProfile::cost_per_zone`] at full occupancy.
    pub peak_zones_per_us: f64,
    /// Fixed cost per kernel launch, microseconds.
    pub launch_overhead_us: f64,
    /// Number of zones in flight at which latency hiding reaches 50% of peak.
    /// Saturation follows `n / (n + half)`, so ~`9 * half` zones reach 90%.
    pub half_occupancy_zones: f64,
    /// Registers available per thread (255 on Volta).
    pub register_file: u32,
    /// Device memory capacity in bytes (16 GiB HBM2 on the Summit V100s).
    pub memory_bytes: u64,
    /// Multiplicative slowdown applied to kernels while the resident set
    /// exceeds `memory_bytes` (unified-memory eviction thrash).
    pub oversubscription_penalty: f64,
    /// Number of concurrent streams (work queues).
    pub num_streams: usize,
    /// Latency of a device memory allocation, microseconds. Device-wide
    /// synchronizing, like `cudaMalloc`.
    pub alloc_latency_us: f64,
    /// Latency of a device memory free, microseconds. Also synchronizing.
    pub free_latency_us: f64,
    /// Device→host copy bandwidth, bytes per microsecond. Checkpointing is
    /// one of the two host↔device crossings the paper's design permits
    /// (§III); this prices it.
    pub d2h_bw_bytes_per_us: f64,
}

impl DeviceConfig {
    /// A Summit-like V100: calibrated so that a well-tuned pure-hydro
    /// workload lands near the paper's ~25 zones/µs per GPU and a 6-GPU node
    /// reaches ~130 zones/µs on the Sedov problem (there the unit-cost
    /// reference kernel is cheaper than the full Castro update).
    pub fn v100() -> Self {
        DeviceConfig {
            name: "SimV100".to_string(),
            peak_zones_per_us: 30.0,
            launch_overhead_us: 5.0,
            half_occupancy_zones: 40_000.0,
            register_file: 255,
            memory_bytes: 16 * (1 << 30),
            oversubscription_penalty: 20.0,
            num_streams: 4,
            alloc_latency_us: 150.0,
            free_latency_us: 100.0,
            // NVLink2 CPU↔GPU: ~50 GB/s per direction.
            d2h_bw_bytes_per_us: 50_000.0,
        }
    }

    /// A Titan-era K20X: lower peak, much smaller register file headroom in
    /// practice (the paper's early OpenACC attempts failed on this part).
    pub fn k20x() -> Self {
        DeviceConfig {
            name: "SimK20X".to_string(),
            peak_zones_per_us: 7.0,
            launch_overhead_us: 8.0,
            half_occupancy_zones: 60_000.0,
            register_file: 255,
            memory_bytes: 6 * (1 << 30),
            oversubscription_penalty: 30.0,
            num_streams: 2,
            alloc_latency_us: 250.0,
            free_latency_us: 150.0,
            // PCIe gen2 x16: ~6 GB/s effective.
            d2h_bw_bytes_per_us: 6_000.0,
        }
    }
}

/// Per-kernel cost characteristics supplied at launch time.
#[derive(Clone, Copy, Debug)]
pub struct KernelProfile {
    /// Relative arithmetic/memory cost per zone; 1.0 is a simple stencil
    /// update. The nuclear-network integrator is far more expensive.
    pub cost_per_zone: f64,
    /// Per-thread register demand. Exceeding the register file causes
    /// spilling and a proportional throughput derating.
    pub registers_per_thread: u32,
}

impl Default for KernelProfile {
    fn default() -> Self {
        KernelProfile {
            cost_per_zone: 1.0,
            registers_per_thread: 128,
        }
    }
}

impl KernelProfile {
    /// Convenience constructor.
    pub fn new(cost_per_zone: f64, registers_per_thread: u32) -> Self {
        KernelProfile {
            cost_per_zone,
            registers_per_thread,
        }
    }
}

/// Aggregate execution statistics for a device.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceStats {
    /// Kernels launched.
    pub kernels: u64,
    /// Total zones processed across all launches.
    pub zones: u64,
    /// Device allocations performed (these are what the pool allocator
    /// eliminates).
    pub allocs: u64,
    /// Device frees performed.
    pub frees: u64,
    /// Bytes currently resident.
    pub bytes_resident: u64,
    /// Peak resident bytes.
    pub bytes_peak: u64,
    /// Simulated microseconds spent in kernel execution (sum over streams).
    pub kernel_us: f64,
    /// Simulated microseconds spent in allocation/free synchronization.
    pub alloc_us: f64,
    /// Device→host copies performed (checkpoint traffic).
    pub d2h_copies: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Simulated microseconds spent in device→host copies.
    pub d2h_us: f64,
}

#[derive(Debug)]
struct DeviceState {
    /// Completion time of the work queued on each stream, in simulated µs.
    stream_clock: Vec<f64>,
    next_stream: usize,
    stats: DeviceStats,
}

/// The simulated accelerator. Cheap to share: clone the [`Arc`].
#[derive(Debug)]
pub struct SimDevice {
    config: DeviceConfig,
    state: Mutex<DeviceState>,
}

impl SimDevice {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Arc<Self> {
        let ns = config.num_streams.max(1);
        Arc::new(SimDevice {
            config,
            state: Mutex::new(DeviceState {
                stream_clock: vec![0.0; ns],
                next_stream: 0,
                stats: DeviceStats::default(),
            }),
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Occupancy (0..1] achieved by a launch of `zones` zones with the given
    /// register demand.
    pub fn occupancy(&self, zones: i64, registers_per_thread: u32) -> f64 {
        let n = zones.max(0) as f64;
        let latency_hiding = n / (n + self.config.half_occupancy_zones);
        let spill = if registers_per_thread > self.config.register_file {
            self.config.register_file as f64 / registers_per_thread as f64
        } else {
            1.0
        };
        latency_hiding * spill
    }

    /// Simulated execution time in microseconds for a launch, excluding
    /// launch overhead.
    pub fn kernel_time_us(&self, zones: i64, profile: &KernelProfile) -> f64 {
        let occ = self.occupancy(zones, profile.registers_per_thread);
        let oversub = {
            let st = self.state.lock().unwrap();
            if st.stats.bytes_resident > self.config.memory_bytes {
                self.config.oversubscription_penalty
            } else {
                1.0
            }
        };
        if zones <= 0 {
            return 0.0;
        }
        (zones as f64) * profile.cost_per_zone * oversub
            / (self.config.peak_zones_per_us * occ.max(1e-12))
    }

    /// Record a kernel launch of `zones` zones on the next stream
    /// (round-robin, mirroring AMReX's stream-per-box iteration). Returns the
    /// simulated duration charged, including launch overhead.
    pub fn launch(&self, zones: i64, profile: &KernelProfile) -> f64 {
        let t = self.config.launch_overhead_us + self.kernel_time_us(zones, profile);
        let mut st = self.state.lock().unwrap();
        let s = st.next_stream;
        st.next_stream = (s + 1) % st.stream_clock.len();
        st.stream_clock[s] += t;
        st.stats.kernels += 1;
        st.stats.zones += zones.max(0) as u64;
        st.stats.kernel_us += t;
        t
    }

    /// Record a device memory allocation. Synchronizes all streams, then
    /// charges the allocation latency — this is the behaviour that makes
    /// per-timestep `cudaMalloc` "disastrous" (§III).
    pub fn malloc(&self, bytes: u64) {
        let mut st = self.state.lock().unwrap();
        let sync =
            st.stream_clock.iter().copied().fold(0.0_f64, f64::max) + self.config.alloc_latency_us;
        for c in st.stream_clock.iter_mut() {
            *c = sync;
        }
        st.stats.allocs += 1;
        st.stats.alloc_us += self.config.alloc_latency_us;
        st.stats.bytes_resident += bytes;
        st.stats.bytes_peak = st.stats.bytes_peak.max(st.stats.bytes_resident);
    }

    /// Record a device memory free (also synchronizing).
    pub fn free(&self, bytes: u64) {
        let mut st = self.state.lock().unwrap();
        let sync =
            st.stream_clock.iter().copied().fold(0.0_f64, f64::max) + self.config.free_latency_us;
        for c in st.stream_clock.iter_mut() {
            *c = sync;
        }
        st.stats.frees += 1;
        st.stats.alloc_us += self.config.free_latency_us;
        st.stats.bytes_resident = st.stats.bytes_resident.saturating_sub(bytes);
    }

    /// Record a device→host copy of `bytes` (the checkpoint crossing).
    /// Synchronizes all streams — the copy cannot start until in-flight
    /// kernels writing the state have drained — then charges
    /// `bytes / d2h_bw_bytes_per_us`. Returns the simulated copy time in
    /// microseconds.
    pub fn d2h_copy(&self, bytes: u64) -> f64 {
        let t = bytes as f64 / self.config.d2h_bw_bytes_per_us.max(1e-12);
        let mut st = self.state.lock().unwrap();
        let sync = st.stream_clock.iter().copied().fold(0.0_f64, f64::max) + t;
        for c in st.stream_clock.iter_mut() {
            *c = sync;
        }
        st.stats.d2h_copies += 1;
        st.stats.d2h_bytes += bytes;
        st.stats.d2h_us += t;
        t
    }

    /// Simulated elapsed time: completion of the latest stream.
    pub fn elapsed_us(&self) -> f64 {
        self.state
            .lock()
            .unwrap()
            .stream_clock
            .iter()
            .copied()
            .fold(0.0_f64, f64::max)
    }

    /// Snapshot of execution statistics.
    pub fn stats(&self) -> DeviceStats {
        self.state.lock().unwrap().stats
    }

    /// Reset the clocks and counters (resident memory is kept: data stays on
    /// the device between steps, per the paper's memory strategy).
    pub fn reset_clocks(&self) {
        let mut st = self.state.lock().unwrap();
        for c in st.stream_clock.iter_mut() {
            *c = 0.0;
        }
        let resident = st.stats.bytes_resident;
        st.stats = DeviceStats {
            bytes_resident: resident,
            bytes_peak: resident,
            ..DeviceStats::default()
        };
    }

    /// True if the resident set exceeds device memory.
    pub fn oversubscribed(&self) -> bool {
        self.state.lock().unwrap().stats.bytes_resident > self.config.memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Arc<SimDevice> {
        SimDevice::new(DeviceConfig::v100())
    }

    #[test]
    fn occupancy_ramps_and_saturates() {
        let d = dev();
        let small = d.occupancy(1_000, 128);
        let medium = d.occupancy(64 * 64 * 64, 128);
        let large = d.occupancy(1_000_000, 128);
        assert!(small < medium && medium < large);
        assert!(large > 0.9, "1M zones should be near saturation: {large}");
        assert!(small < 0.05, "1k zones should be latency-bound: {small}");
    }

    #[test]
    fn register_spill_derates() {
        let d = dev();
        let ok = d.occupancy(1_000_000, 255);
        let spill = d.occupancy(1_000_000, 510);
        assert!((spill / ok - 0.5).abs() < 1e-12);
    }

    #[test]
    fn launch_charges_streams_round_robin() {
        let d = dev();
        let p = KernelProfile::default();
        for _ in 0..4 {
            d.launch(100_000, &p);
        }
        // 4 launches over 4 streams: elapsed is one launch, not four.
        let one = d.config().launch_overhead_us + d.kernel_time_us(100_000, &p);
        assert!((d.elapsed_us() - one).abs() < 1e-9);
        assert_eq!(d.stats().kernels, 4);
        assert_eq!(d.stats().zones, 400_000);
    }

    #[test]
    fn malloc_synchronizes_all_streams() {
        let d = dev();
        let p = KernelProfile::default();
        d.launch(500_000, &p); // loads stream 0
        let before = d.elapsed_us();
        d.malloc(1024);
        // After a synchronizing malloc, every stream's clock is at the front.
        let after = d.elapsed_us();
        assert!((after - (before + d.config().alloc_latency_us)).abs() < 1e-9);
        d.launch(1, &p); // next stream starts *after* the malloc barrier
        assert!(d.elapsed_us() > after);
    }

    #[test]
    fn oversubscription_penalty_applies() {
        let d = dev();
        let p = KernelProfile::default();
        let t_fit = d.kernel_time_us(1_000_000, &p);
        d.malloc(17 * (1 << 30)); // exceed 16 GiB
        assert!(d.oversubscribed());
        let t_over = d.kernel_time_us(1_000_000, &p);
        assert!((t_over / t_fit - d.config().oversubscription_penalty).abs() < 1e-9);
        d.free(17 * (1 << 30));
        assert!(!d.oversubscribed());
    }

    #[test]
    fn d2h_copy_synchronizes_and_charges_bandwidth() {
        let d = dev();
        let p = KernelProfile::default();
        d.launch(500_000, &p); // loads stream 0
        let before = d.elapsed_us();
        let bytes = 5_000_000u64; // 5 MB at 50 GB/s → 100 µs
        let t = d.d2h_copy(bytes);
        assert!((t - bytes as f64 / d.config().d2h_bw_bytes_per_us).abs() < 1e-9);
        assert!((d.elapsed_us() - (before + t)).abs() < 1e-9);
        let st = d.stats();
        assert_eq!(st.d2h_copies, 1);
        assert_eq!(st.d2h_bytes, bytes);
        assert!((st.d2h_us - t).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_resident_memory() {
        let d = dev();
        d.malloc(4096);
        d.launch(10, &KernelProfile::default());
        d.reset_clocks();
        assert_eq!(d.stats().kernels, 0);
        assert_eq!(d.stats().bytes_resident, 4096);
        assert_eq!(d.elapsed_us(), 0.0);
    }
}
