//! The `parallel_for` abstraction layer (§III of the paper).
//!
//! AMReX's answer to Kokkos/RAJA: application code expresses *the work done
//! at a given index* `(i, j, k)` as a closure over an [`IndexBox`], and the
//! execution space decides how the loop runs:
//!
//! * [`ExecSpace::Serial`] — a plain nested loop (single CPU core);
//! * [`ExecSpace::Tiled`] — coarse-grained threading over tiles on the
//!   persistent [`WorkerPool`], matching the MPI + OpenMP structure used on
//!   Cori/Edison (Fig. 1 centre). Threads are spawned once per process, not
//!   per loop — see [`crate::pool`];
//! * [`ExecSpace::Device`] — every zone is one device thread (Fig. 1 right).
//!   The closure still runs on the host so answers are real, and the
//!   simulated device is charged a modelled execution time.
//!
//! Because the loop body is identical in all three cases, the same physics
//! source runs on every backend — the "single source" property the paper
//! deems essential. Every launch reports its zone count (and, on the device
//! space, its charged microseconds) to the [`Profiler`], so telemetry
//! regions see per-kernel totals without per-call-site bookkeeping.

use crate::device::{KernelProfile, SimDevice};
use crate::index::{IndexBox, IntVect};
use crate::pool::{par_each_mut_bounded, Tasks, WorkerPool};
use crate::profiler::Profiler;
use std::sync::Arc;

/// Parameters for the coarse-grained tiled (OpenMP-like) backend.
#[derive(Clone, Debug)]
pub struct TiledExec {
    /// Maximum participating threads per parallel region (workers from the
    /// shared pool plus the calling thread).
    pub nthreads: usize,
    /// Tile extent per dimension. AMReX's default tile is thin in `y`/`z` and
    /// spans the whole box in `x` to preserve stride-1 inner loops.
    pub tile_size: IntVect,
}

impl Default for TiledExec {
    fn default() -> Self {
        TiledExec {
            nthreads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            tile_size: IntVect::new(1 << 20, 8, 8),
        }
    }
}

/// An execution space: where and how `parallel_for` loops run.
#[derive(Clone)]
pub enum ExecSpace {
    /// Plain serial nested loops.
    Serial,
    /// Coarse-grained host threading over tiles on the persistent pool.
    Tiled(TiledExec),
    /// Per-zone execution accounted on a simulated accelerator.
    Device(Arc<SimDevice>),
}

impl std::fmt::Debug for ExecSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecSpace::Serial => write!(f, "Serial"),
            ExecSpace::Tiled(t) => write!(f, "Tiled(n={}, tile={:?})", t.nthreads, t.tile_size),
            ExecSpace::Device(d) => write!(f, "Device({})", d.config().name),
        }
    }
}

/// Split `bx` into tiles of at most `tile` zones per dimension.
pub fn tiles_of(bx: IndexBox, tile: IntVect) -> Vec<IndexBox> {
    if bx.is_empty() {
        return vec![];
    }
    let tile = IntVect::new(tile.x().max(1), tile.y().max(1), tile.z().max(1));
    let lo = bx.lo();
    let hi = bx.hi();
    let mut out = Vec::new();
    let mut kz = lo.z();
    while kz <= hi.z() {
        let kh = (kz + tile.z() - 1).min(hi.z());
        let mut jy = lo.y();
        while jy <= hi.y() {
            let jh = (jy + tile.y() - 1).min(hi.y());
            let mut ix = lo.x();
            while ix <= hi.x() {
                let ih = (ix + tile.x() - 1).min(hi.x());
                out.push(IndexBox::new(
                    IntVect::new(ix, jy, kz),
                    IntVect::new(ih, jh, kh),
                ));
                ix = ih + 1;
            }
            jy = jh + 1;
        }
        kz = kh + 1;
    }
    out
}

#[inline]
fn serial_for<F: FnMut(i32, i32, i32)>(bx: IndexBox, mut f: F) {
    if bx.is_empty() {
        return;
    }
    let lo = bx.lo();
    let hi = bx.hi();
    // Exclusive i64 ranges instead of `lo..=hi`: RangeInclusive carries an
    // `exhausted` flag that defeats LLVM's loop canonicalization, costing
    // ~1.5 ns/zone of pure loop control on every kernel. Widening to i64
    // makes `hi + 1` overflow-free.
    for k in lo.z() as i64..hi.z() as i64 + 1 {
        for j in lo.y() as i64..hi.y() as i64 + 1 {
            for i in lo.x() as i64..hi.x() as i64 + 1 {
                f(i as i32, j as i32, k as i32);
            }
        }
    }
}

impl ExecSpace {
    /// Run `f(i, j, k)` for every zone of `bx` with default kernel cost.
    ///
    /// The closure must be safe to call concurrently for *different* indices;
    /// this is the "embarrassingly parallel over zones" contract every kernel
    /// was rewritten to satisfy during the GPU port.
    pub fn par_for<F>(&self, bx: IndexBox, f: F)
    where
        F: Fn(i32, i32, i32) + Sync,
    {
        self.par_for_prof(bx, &KernelProfile::default(), f)
    }

    /// Run `f(i, j, k)` for every zone of `bx`, charging the given cost
    /// profile if this is a device space.
    pub fn par_for_prof<F>(&self, bx: IndexBox, profile: &KernelProfile, f: F)
    where
        F: Fn(i32, i32, i32) + Sync,
    {
        Profiler::record_zones(bx.num_zones().max(0) as u64);
        match self {
            ExecSpace::Serial => serial_for(bx, f),
            ExecSpace::Device(dev) => {
                Profiler::record_device_us(dev.launch(bx.num_zones(), profile));
                serial_for(bx, f);
            }
            ExecSpace::Tiled(t) => {
                let tiles = tiles_of(bx, t.tile_size);
                if tiles.len() <= 1 || t.nthreads <= 1 {
                    serial_for(bx, f);
                    return;
                }
                let fref = &f;
                let tref = &tiles;
                WorkerPool::global().run(tiles.len(), t.nthreads, &|tasks: Tasks<'_>| {
                    while let Some(idx) = tasks.next_task() {
                        serial_for(tref[idx], fref);
                    }
                });
            }
        }
    }

    /// Reference backend that spawns and joins fresh OS threads for every
    /// call — the pre-pool behaviour of [`ExecSpace::Tiled`], retained only
    /// so the ablation benchmark can measure what the persistent pool buys.
    pub fn par_for_spawn_per_call<F>(&self, bx: IndexBox, f: F)
    where
        F: Fn(i32, i32, i32) + Sync,
    {
        let t = match self {
            ExecSpace::Tiled(t) => t.clone(),
            _ => {
                self.par_for(bx, f);
                return;
            }
        };
        let tiles = tiles_of(bx, t.tile_size);
        if tiles.len() <= 1 || t.nthreads <= 1 {
            serial_for(bx, f);
            return;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let fref = &f;
        let tref = &tiles;
        let nref = &next;
        std::thread::scope(|s| {
            for _ in 0..t.nthreads.min(tiles.len()) {
                s.spawn(move || loop {
                    let idx = nref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= tref.len() {
                        break;
                    }
                    serial_for(tref[idx], fref);
                });
            }
        });
    }

    /// Parallel sum-reduction of `f(i, j, k)` over `bx`.
    pub fn par_reduce_sum<F>(&self, bx: IndexBox, f: F) -> f64
    where
        F: Fn(i32, i32, i32) -> f64 + Sync,
    {
        self.reduce(bx, 0.0, |a, b| a + b, f)
    }

    /// Parallel max-reduction of `f(i, j, k)` over `bx`.
    pub fn par_reduce_max<F>(&self, bx: IndexBox, f: F) -> f64
    where
        F: Fn(i32, i32, i32) -> f64 + Sync,
    {
        self.reduce(bx, f64::NEG_INFINITY, f64::max, f)
    }

    /// Parallel min-reduction of `f(i, j, k)` over `bx`.
    pub fn par_reduce_min<F>(&self, bx: IndexBox, f: F) -> f64
    where
        F: Fn(i32, i32, i32) -> f64 + Sync,
    {
        self.reduce(bx, f64::INFINITY, f64::min, f)
    }

    fn reduce<F, C>(&self, bx: IndexBox, init: f64, combine: C, f: F) -> f64
    where
        F: Fn(i32, i32, i32) -> f64 + Sync,
        C: Fn(f64, f64) -> f64 + Sync,
    {
        Profiler::record_zones(bx.num_zones().max(0) as u64);
        match self {
            ExecSpace::Serial => {
                let mut acc = init;
                serial_for(bx, |i, j, k| acc = combine(acc, f(i, j, k)));
                acc
            }
            ExecSpace::Device(dev) => {
                Profiler::record_device_us(dev.launch(bx.num_zones(), &KernelProfile::default()));
                let mut acc = init;
                serial_for(bx, |i, j, k| acc = combine(acc, f(i, j, k)));
                acc
            }
            ExecSpace::Tiled(t) => {
                let tiles = tiles_of(bx, t.tile_size);
                if tiles.len() <= 1 || t.nthreads <= 1 {
                    let mut acc = init;
                    serial_for(bx, |i, j, k| acc = combine(acc, f(i, j, k)));
                    return acc;
                }
                // One partial slot per tile, filled by whichever thread
                // claims the tile, then folded serially in tile order so
                // the result is independent of scheduling.
                let mut partials: Vec<f64> = vec![init; tiles.len()];
                let fref = &f;
                let cref = &combine;
                let tref = &tiles;
                par_each_mut_bounded(
                    WorkerPool::global(),
                    &mut partials,
                    t.nthreads,
                    |idx, slot| {
                        let mut acc = init;
                        serial_for(tref[idx], |i, j, k| acc = cref(acc, fref(i, j, k)));
                        *slot = acc;
                    },
                );
                partials.into_iter().fold(init, &combine)
            }
        }
    }

    /// The simulated device behind this space, if any.
    pub fn device(&self) -> Option<&Arc<SimDevice>> {
        match self {
            ExecSpace::Device(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spaces() -> Vec<ExecSpace> {
        vec![
            ExecSpace::Serial,
            ExecSpace::Tiled(TiledExec {
                nthreads: 4,
                tile_size: IntVect::new(4, 4, 4),
            }),
            ExecSpace::Device(SimDevice::new(DeviceConfig::v100())),
        ]
    }

    #[test]
    fn par_for_visits_every_zone_exactly_once() {
        let bx = IndexBox::cube(9);
        for ex in spaces() {
            let counts: Vec<AtomicU64> = (0..bx.num_zones()).map(|_| AtomicU64::new(0)).collect();
            ex.par_for(bx, |i, j, k| {
                let n = bx.linear_index(IntVect::new(i, j, k));
                counts[n].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "backend {ex:?} missed or repeated zones"
            );
        }
    }

    #[test]
    fn par_for_empty_box_is_noop() {
        for ex in spaces() {
            ex.par_for(IndexBox::empty(), |_, _, _| panic!("must not run"));
        }
    }

    #[test]
    fn reductions_agree_across_backends() {
        let bx = IndexBox::new(IntVect::new(-2, 0, 1), IntVect::new(5, 7, 6));
        let f = |i: i32, j: i32, k: i32| (i + 2 * j + 3 * k) as f64;
        let reference: f64 = bx.iter().map(|iv| f(iv.x(), iv.y(), iv.z())).sum();
        let refmax = bx
            .iter()
            .map(|iv| f(iv.x(), iv.y(), iv.z()))
            .fold(f64::NEG_INFINITY, f64::max);
        let refmin = bx
            .iter()
            .map(|iv| f(iv.x(), iv.y(), iv.z()))
            .fold(f64::INFINITY, f64::min);
        for ex in spaces() {
            assert!(
                (ex.par_reduce_sum(bx, f) - reference).abs() < 1e-9,
                "{ex:?}"
            );
            assert_eq!(ex.par_reduce_max(bx, f), refmax, "{ex:?}");
            assert_eq!(ex.par_reduce_min(bx, f), refmin, "{ex:?}");
        }
    }

    #[test]
    fn tiled_reductions_are_deterministic() {
        let bx = IndexBox::cube(13);
        let ex = ExecSpace::Tiled(TiledExec {
            nthreads: 8,
            tile_size: IntVect::new(3, 3, 3),
        });
        let f = |i: i32, j: i32, k: i32| ((i * 31 + j * 7 + k) as f64).sin();
        let first = ex.par_reduce_sum(bx, f);
        for _ in 0..10 {
            assert_eq!(first.to_bits(), ex.par_reduce_sum(bx, f).to_bits());
        }
    }

    #[test]
    fn tiles_cover_box_disjointly() {
        let bx = IndexBox::new(IntVect::new(3, -1, 2), IntVect::new(17, 12, 9));
        let tiles = tiles_of(bx, IntVect::new(5, 4, 3));
        let total: i64 = tiles.iter().map(|t| t.num_zones()).sum();
        assert_eq!(total, bx.num_zones());
        for (i, a) in tiles.iter().enumerate() {
            assert!(bx.contains_box(a));
            for b in &tiles[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn device_space_records_launches() {
        let dev = SimDevice::new(DeviceConfig::v100());
        let ex = ExecSpace::Device(dev.clone());
        ex.par_for(IndexBox::cube(8), |_, _, _| {});
        ex.par_reduce_sum(IndexBox::cube(8), |_, _, _| 1.0);
        assert_eq!(dev.stats().kernels, 2);
        assert_eq!(dev.stats().zones, 1024);
        assert!(dev.elapsed_us() > 0.0);
    }

    #[test]
    fn tiled_steady_state_spawns_no_threads() {
        let ex = ExecSpace::Tiled(TiledExec {
            nthreads: 4,
            tile_size: IntVect::new(4, 4, 4),
        });
        let bx = IndexBox::cube(16);
        // Warm up: first use may lazily start the global pool.
        ex.par_for(bx, |_, _, _| {});
        let spawned = WorkerPool::global().stats().threads_spawned;
        for _ in 0..100 {
            ex.par_for(bx, |i, j, k| {
                std::hint::black_box(i + j + k);
            });
            ex.par_reduce_sum(bx, |i, j, k| (i + j + k) as f64);
        }
        assert_eq!(
            WorkerPool::global().stats().threads_spawned,
            spawned,
            "Tiled backend must not spawn threads after warm-up"
        );
    }
}
