//! Dependency-graph task scheduling over the worker pool.
//!
//! The bulk-synchronous step loop (fill ghosts → barrier → compute → barrier)
//! is exactly the fall-off in the paper's Figures 2–3: every exchange is a
//! global synchronization point. The futurized formulations in Octo-Tiger
//! (Daiß et al. 2024) and Parthenon (Grete et al. 2022) replace the barrier
//! with a *task graph*: each box's kernels become tasks, ghost exchanges
//! become edges, and interior work runs while halos are in flight.
//!
//! [`TaskGraph`] is that scheduler, built on [`WorkerPool`]: tasks are added
//! with explicit dependency edges, validated acyclic, and executed either
//!
//! * in parallel ([`TaskGraph::run`]) — a shared ready queue drained by the
//!   pool's participants; a task becomes ready when its last dependency
//!   completes;
//! * serially in deterministic smallest-id topological order
//!   ([`TaskGraph::run_serial`]) — the reference schedule;
//! * serially in a *seeded random* topological order
//!   ([`TaskGraph::run_seeded`]) — the adversarial schedule the proptests use
//!   to prove order-independence.
//!
//! Determinism contract: the graph guarantees only that a task runs after its
//! dependencies and exactly once. Tasks that write shared data must write
//! *disjoint* slots (the [`crate::pool`] / `Array4Mut` contract); under that
//! contract the final state is bit-identical for every legal schedule, which
//! is what lets the overlapped drivers reproduce the bulk-synchronous digest.

use crate::pool::{Tasks, WorkerPool};
use exastro_telemetry::graphtrace::{self, GraphTrace, TaskClass, TaskLabel, TaskRecord};
use exastro_telemetry::{counter_add, Telemetry};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a graph could not be executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has a dependency cycle; `stuck` tasks can never become
    /// ready.
    Cycle {
        /// Number of tasks unreachable by any topological order.
        stuck: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cycle { stuck } => {
                write!(
                    f,
                    "task graph has a dependency cycle ({stuck} task(s) stuck)"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Counters from one parallel graph execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphRunStats {
    /// Tasks executed (always the full graph on success).
    pub tasks: usize,
    /// Dependency edges in the graph.
    pub edges: usize,
    /// Largest ready-queue depth observed — the available parallelism the
    /// schedule actually exposed.
    pub peak_ready: usize,
}

/// A directed acyclic graph of tasks executed over the worker pool.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    /// `deps[t]` — tasks that must complete before `t` starts.
    deps: Vec<Vec<usize>>,
    /// `dependents[t]` — tasks waiting on `t`.
    dependents: Vec<Vec<usize>>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with no dependencies; returns its id.
    pub fn add_task(&mut self) -> usize {
        let id = self.deps.len();
        self.deps.push(Vec::new());
        self.dependents.push(Vec::new());
        id
    }

    /// Add a task that depends on every task in `after`; returns its id.
    pub fn add_task_after(&mut self, after: &[usize]) -> usize {
        let id = self.add_task();
        for &d in after {
            self.add_edge(d, id);
        }
        id
    }

    /// Declare that `before` must complete before `after` starts.
    ///
    /// Panics on out-of-range ids or a self-edge (both are construction
    /// bugs, not runtime conditions).
    pub fn add_edge(&mut self, before: usize, after: usize) {
        assert!(
            before < self.deps.len() && after < self.deps.len(),
            "edge {before}->{after} references a task beyond {}",
            self.deps.len()
        );
        assert_ne!(before, after, "task {before} cannot depend on itself");
        self.deps[after].push(before);
        self.dependents[before].push(after);
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    fn indegrees(&self) -> Vec<usize> {
        self.deps.iter().map(Vec::len).collect()
    }

    /// The deterministic reference schedule: Kahn's algorithm picking the
    /// smallest ready id first. Errors if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, GraphError> {
        let mut indeg = self.indegrees();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..self.len())
            .filter(|&t| indeg[t] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(std::cmp::Reverse(t)) = heap.pop() {
            order.push(t);
            for &d in &self.dependents[t] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    heap.push(std::cmp::Reverse(d));
                }
            }
        }
        if order.len() == self.len() {
            Ok(order)
        } else {
            Err(GraphError::Cycle {
                stuck: self.len() - order.len(),
            })
        }
    }

    /// Run every task serially in the deterministic reference order.
    pub fn run_serial<F: FnMut(usize)>(&self, mut f: F) -> Result<(), GraphError> {
        for t in self.topo_order()? {
            f(t);
        }
        Ok(())
    }

    /// Run every task serially in a seeded *random* topological order: at
    /// each step a uniformly-chosen ready task runs. Any two seeds give
    /// legal schedules; the proptests assert they give identical state.
    pub fn run_seeded<F: FnMut(usize)>(&self, seed: u64, mut f: F) -> Result<(), GraphError> {
        let mut indeg = self.indegrees();
        let mut ready: Vec<usize> = (0..self.len()).filter(|&t| indeg[t] == 0).collect();
        // SplitMix64: tiny, seedable, good enough to shuffle a ready set.
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next_u64 = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut done = 0usize;
        while let Some(pick) = (!ready.is_empty()).then(|| next_u64() as usize % ready.len()) {
            let t = ready.swap_remove(pick);
            f(t);
            done += 1;
            for &d in &self.dependents[t] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if done == self.len() {
            Ok(())
        } else {
            Err(GraphError::Cycle {
                stuck: self.len() - done,
            })
        }
    }

    /// Execute the graph on `pool` with at most `max_threads` participants.
    ///
    /// Participants drain a shared ready queue; completing a task decrements
    /// its dependents' pending counts and wakes waiters as new tasks become
    /// ready. Interior tasks therefore run while "halo" tasks are still
    /// pending — the overlap the drivers build on. A caller-computed cap of
    /// 0 is clamped to 1 (serial), matching
    /// [`crate::pool::par_each_mut_bounded`].
    ///
    /// Tasks run unnamed (`task<N>`, class `Other`); drivers that want
    /// per-task spans, dependency flow arrows, and an overlap ledger use
    /// [`TaskGraph::run_labeled`].
    pub fn run<F: Fn(usize) + Sync>(
        &self,
        pool: &WorkerPool,
        max_threads: usize,
        f: F,
    ) -> Result<GraphRunStats, GraphError> {
        self.run_labeled(
            pool,
            max_threads,
            "graph",
            |t| TaskLabel::new(format!("task{t}"), TaskClass::Other),
            f,
        )
    }

    /// [`TaskGraph::run`] with observability: `label` names the graph and
    /// `meta(t)` supplies each task's span name and overlap class.
    ///
    /// When `Telemetry::graph_trace_enabled()`, every task records its
    /// ready/start/end timestamps and worker id into a
    /// [`GraphTrace`](exastro_telemetry::GraphTrace) (drained by
    /// `Telemetry::write_graph_summary`), and each task emits a span plus
    /// dependency flow arrows (`ph: "s"`/`"f"`) into the shared trace ring
    /// buffer — the arrows Perfetto draws between task slices. When only
    /// `Telemetry::is_enabled()`, a successful run still bumps the
    /// `graph.runs` / `graph.tasks` / `graph.edges` / `graph.peak_ready`
    /// counters so graph activity shows up in `counters_snapshot()`
    /// without callers threading [`GraphRunStats`]. `meta` is never called
    /// when graph tracing is off.
    pub fn run_labeled<F, L>(
        &self,
        pool: &WorkerPool,
        max_threads: usize,
        label: &str,
        meta: L,
        f: F,
    ) -> Result<GraphRunStats, GraphError>
    where
        F: Fn(usize) + Sync,
        L: Fn(usize) -> TaskLabel + Sync,
    {
        let n = self.len();
        let stats = GraphRunStats {
            tasks: n,
            edges: self.num_edges(),
            peak_ready: 0,
        };
        if n == 0 {
            return Ok(stats);
        }
        // Validate up front: a cycle discovered mid-run would strand
        // participants in the condvar wait below.
        self.topo_order()?;

        // Per-task schedule observations, written under the run lock.
        struct Sched {
            ready_ns: Vec<u64>,
            start_ns: Vec<u64>,
            end_ns: Vec<u64>,
            worker: Vec<u64>,
        }
        struct RunState {
            indeg: Vec<usize>,
            ready: Vec<usize>,
            completed: usize,
            peak_ready: usize,
            panic: Option<Box<dyn std::any::Any + Send>>,
            sched: Option<Sched>,
        }

        let tracing = Telemetry::is_enabled() && Telemetry::graph_trace_enabled();
        let epoch = Instant::now();
        let labels: Vec<TaskLabel> = if tracing {
            (0..n).map(&meta).collect()
        } else {
            Vec::new()
        };
        // Process-unique flow ids, one per edge: the id of edge
        // (t -> dependents[t][j]) is flow_base + edge_offset[t] + j. The
        // predecessor emits the arrow tail inside its span; the successor,
        // which can only start later, emits the head inside its own.
        let (flow_base, edge_offset, incoming) = if tracing {
            let mut offsets = Vec::with_capacity(n);
            let mut acc = 0u64;
            for t in 0..n {
                offsets.push(acc);
                acc += self.dependents[t].len() as u64;
            }
            let mut incoming: Vec<Vec<u64>> = vec![Vec::new(); n];
            for (t, &off) in offsets.iter().enumerate() {
                for (j, &d) in self.dependents[t].iter().enumerate() {
                    incoming[d].push(off + j as u64);
                }
            }
            (graphtrace::reserve_flow_ids(acc), offsets, incoming)
        } else {
            (0, Vec::new(), Vec::new())
        };

        let indeg = self.indegrees();
        let ready: Vec<usize> = (0..n).filter(|&t| indeg[t] == 0).collect();
        let state = Mutex::new(RunState {
            peak_ready: ready.len(),
            indeg,
            ready,
            completed: 0,
            panic: None,
            sched: tracing.then(|| Sched {
                ready_ns: vec![0; n],
                start_ns: vec![0; n],
                end_ns: vec![0; n],
                worker: vec![0; n],
            }),
        });
        let wake = Condvar::new();

        pool.run(n, max_threads.max(1), &|_tasks: Tasks<'_>| {
            loop {
                let mut st = state.lock().unwrap();
                let t = loop {
                    if st.completed == n || st.panic.is_some() {
                        return;
                    }
                    if let Some(t) = st.ready.pop() {
                        break t;
                    }
                    st = wake.wait(st).unwrap();
                };
                drop(st);
                let start_ns = tracing.then(|| epoch.elapsed().as_nanos() as u64);
                if tracing {
                    Telemetry::trace_begin(&labels[t].name);
                    for &e in &incoming[t] {
                        Telemetry::trace_flow_finish("dep", flow_base + e);
                    }
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(t)));
                if tracing && result.is_ok() {
                    for j in 0..self.dependents[t].len() {
                        Telemetry::trace_flow_start("dep", flow_base + edge_offset[t] + j as u64);
                    }
                }
                if tracing {
                    Telemetry::trace_end(&labels[t].name);
                }
                let end_ns = tracing.then(|| epoch.elapsed().as_nanos() as u64);
                let mut st = state.lock().unwrap();
                match result {
                    Ok(()) => {
                        st.completed += 1;
                        let newly_ready_from = st.ready.len();
                        for &d in &self.dependents[t] {
                            st.indeg[d] -= 1;
                            if st.indeg[d] == 0 {
                                st.ready.push(d);
                            }
                        }
                        st.peak_ready = st.peak_ready.max(st.ready.len());
                        let st_mut = &mut *st;
                        if let Some(sched) = st_mut.sched.as_mut() {
                            sched.start_ns[t] = start_ns.unwrap_or(0);
                            sched.end_ns[t] = end_ns.unwrap_or(0);
                            sched.worker[t] = exastro_telemetry::trace::thread_trace_id();
                            let now = sched.end_ns[t];
                            for &d in &st_mut.ready[newly_ready_from..] {
                                sched.ready_ns[d] = now;
                            }
                        }
                    }
                    Err(p) => {
                        // Keep the first payload; abort the schedule so no
                        // participant waits forever on a task that will
                        // never complete.
                        if st.panic.is_none() {
                            st.panic = Some(p);
                        }
                    }
                }
                drop(st);
                wake.notify_all();
            }
        });

        let mut st = state.into_inner().unwrap();
        if let Some(p) = st.panic.take() {
            resume_unwind(p);
        }
        debug_assert_eq!(st.completed, n);
        let stats = GraphRunStats {
            peak_ready: st.peak_ready,
            ..stats
        };
        if Telemetry::is_enabled() {
            counter_add("graph.runs", 1);
            counter_add("graph.tasks", stats.tasks as u64);
            counter_add("graph.edges", stats.edges as u64);
            counter_add("graph.peak_ready", stats.peak_ready as u64);
        }
        if let Some(sched) = st.sched.take() {
            let tasks: Vec<TaskRecord> = (0..n)
                .map(|t| TaskRecord {
                    task: t,
                    name: labels[t].name.clone(),
                    class: labels[t].class,
                    ready_ns: sched.ready_ns[t],
                    start_ns: sched.start_ns[t],
                    end_ns: sched.end_ns[t],
                    worker: sched.worker[t],
                })
                .collect();
            graphtrace::record(GraphTrace {
                label: label.to_string(),
                wall_ns: epoch.elapsed().as_nanos() as u64,
                tasks,
                deps: self.deps.clone(),
            });
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Completion stamps: stamp[t] = global order in which t finished.
    fn stamps_of_run(g: &TaskGraph, pool: &WorkerPool, cap: usize) -> Vec<usize> {
        let clock = AtomicUsize::new(1);
        let stamps: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        g.run(pool, cap, |t| {
            stamps[t].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
        })
        .unwrap();
        stamps.into_iter().map(|s| s.into_inner()).collect()
    }

    fn assert_respects_deps(g: &TaskGraph, stamps: &[usize]) {
        for t in 0..g.len() {
            assert!(stamps[t] > 0, "task {t} never ran");
            for &d in &g.deps[t] {
                assert!(
                    stamps[d] < stamps[t],
                    "task {t} (stamp {}) ran before its dependency {d} (stamp {})",
                    stamps[t],
                    stamps[d]
                );
            }
        }
    }

    fn diamond() -> TaskGraph {
        // 0 -> {1, 2} -> 3
        let mut g = TaskGraph::new();
        let a = g.add_task();
        let b = g.add_task_after(&[a]);
        let c = g.add_task_after(&[a]);
        g.add_task_after(&[b, c]);
        g
    }

    #[test]
    fn serial_order_is_deterministic_topological() {
        let g = diamond();
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2, 3]);
        let mut order = Vec::new();
        g.run_serial(|t| order.push(t)).unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_run_respects_dependencies() {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let g = diamond();
            let stamps = stamps_of_run(&g, &pool, usize::MAX);
            assert_respects_deps(&g, &stamps);
        }
    }

    #[test]
    fn wide_graph_exposes_parallelism_and_runs_every_task_once() {
        let pool = WorkerPool::new(3);
        // 64 independent chains of length 3: src -> mid -> sink.
        let mut g = TaskGraph::new();
        for _ in 0..64 {
            let a = g.add_task();
            let b = g.add_task_after(&[a]);
            g.add_task_after(&[b]);
        }
        let counts: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        let stats = g
            .run(&pool, usize::MAX, |t| {
                counts[t].fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        assert_eq!(stats.tasks, 192);
        assert_eq!(stats.edges, 128);
        assert!(stats.peak_ready >= 1);
    }

    #[test]
    fn cycle_is_rejected_not_deadlocked() {
        let mut g = TaskGraph::new();
        let a = g.add_task();
        let b = g.add_task_after(&[a]);
        g.add_edge(b, a); // cycle a <-> b
        assert_eq!(g.topo_order(), Err(GraphError::Cycle { stuck: 2 }));
        let pool = WorkerPool::new(2);
        assert!(g.run(&pool, usize::MAX, |_| {}).is_err());
        assert!(g.run_serial(|_| {}).is_err());
        assert!(g.run_seeded(7, |_| {}).is_err());
    }

    #[test]
    fn seeded_orders_are_legal_and_cover_every_task() {
        let g = diamond();
        for seed in 0..32u64 {
            let mut order = Vec::new();
            g.run_seeded(seed, |t| order.push(t)).unwrap();
            assert_eq!(order.len(), 4);
            let mut stamps = vec![0usize; 4];
            for (i, &t) in order.iter().enumerate() {
                stamps[t] = i + 1;
            }
            assert_respects_deps(&g, &stamps);
        }
        // The middle pair {1, 2} is unordered: some pair of seeds must
        // disagree, or the "random" schedule is not exercising anything.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32u64 {
            let mut order = Vec::new();
            g.run_seeded(seed, |t| order.push(t)).unwrap();
            seen.insert(order);
        }
        assert!(seen.len() > 1, "32 seeds all produced one schedule");
    }

    #[test]
    fn zero_cap_and_empty_graph_are_fine() {
        let pool = WorkerPool::new(2);
        let g = TaskGraph::new();
        let stats = g.run(&pool, 0, |_| panic!("no tasks to run")).unwrap();
        assert_eq!(stats.tasks, 0);
        // A computed cap of 0 on a real graph clamps to serial, not a hang.
        let g = diamond();
        let stamps = stamps_of_run(&g, &pool, 0);
        assert_respects_deps(&g, &stamps);
    }

    /// Serializes tests that flip the process-wide telemetry flags.
    static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn labeled_run_records_a_graph_trace_with_consistent_schedule() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let pool = WorkerPool::new(3);
        Telemetry::enable_graph_trace();
        let mut g = TaskGraph::new();
        // Two fan-ins: {0,1} -> 2, {0,1,2} -> 3.
        let a = g.add_task();
        let b = g.add_task();
        let c = g.add_task_after(&[a, b]);
        g.add_task_after(&[a, b, c]);
        g.run_labeled(
            &pool,
            usize::MAX,
            "test.trace.graph",
            |t| {
                let class = if t < 2 {
                    TaskClass::Comm
                } else {
                    TaskClass::Compute
                };
                TaskLabel::new(format!("t{t}"), class)
            },
            |_| {
                std::thread::yield_now();
            },
        )
        .unwrap();
        Telemetry::disable_graph_trace();
        Telemetry::disable();
        let trace = graphtrace::take()
            .into_iter()
            .find(|tr| tr.label == "test.trace.graph")
            .expect("labeled run must record a trace");
        assert_eq!(trace.tasks.len(), 4);
        assert_eq!(trace.deps.iter().map(Vec::len).sum::<usize>(), 5);
        for r in &trace.tasks {
            assert!(
                r.ready_ns <= r.start_ns,
                "task {} ready after start",
                r.task
            );
            assert!(r.start_ns <= r.end_ns, "task {} ends before start", r.task);
            assert!(r.worker > 0, "task {} missing worker id", r.task);
        }
        // Dependencies are reflected in the observed schedule: a dep's end
        // is never after its dependent's start.
        for (t, deps) in trace.deps.iter().enumerate() {
            for &d in deps {
                assert!(
                    trace.tasks[d].end_ns <= trace.tasks[t].start_ns,
                    "dep {d} of task {t} finished after the task started"
                );
            }
        }
        // The analyzer agrees: comm tasks 0 and 1 populate the ledger.
        let summary = graphtrace::summarize(&trace);
        assert_eq!(summary.tasks, 4);
        assert!(summary.comm_us >= 0.0);
        assert!(summary.critical_path_us > 0.0);
        assert!(!summary.critical_path.is_empty());
    }

    #[test]
    fn enabled_telemetry_wires_graph_stats_into_counters() {
        use exastro_telemetry::counter_get;
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let pool = WorkerPool::new(2);
        Telemetry::enable();
        let before_runs = counter_get("graph.runs");
        let before_tasks = counter_get("graph.tasks");
        let g = diamond();
        g.run(&pool, usize::MAX, |_| {}).unwrap();
        assert_eq!(counter_get("graph.runs"), before_runs + 1);
        assert_eq!(counter_get("graph.tasks"), before_tasks + 4);
        Telemetry::disable();
        // Disabled telemetry stays zero-cost: counters do not move.
        let frozen = counter_get("graph.runs");
        g.run(&pool, usize::MAX, |_| {}).unwrap();
        assert_eq!(counter_get("graph.runs"), frozen);
    }

    #[test]
    fn task_panic_propagates_without_deadlock() {
        let pool = WorkerPool::new(2);
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            g.add_task();
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            g.run(&pool, usize::MAX, |t| {
                if t == 5 {
                    panic!("task 5 failed");
                }
            })
            .unwrap();
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload preserved");
        assert_eq!(msg, "task 5 failed");
        // The pool must survive for the next graph.
        let g2 = diamond();
        let stamps = stamps_of_run(&g2, &pool, usize::MAX);
        assert_respects_deps(&g2, &stamps);
    }
}
