//! Index-space primitives: [`IntVect`] and [`IndexBox`].
//!
//! These mirror AMReX's `IntVect` and `Box`: a zone is addressed by an
//! integer triple `(i, j, k)` and a box is the inclusive rectangular range
//! `[lo, hi]` in index space. All physics loops in the suite iterate over an
//! `IndexBox` through [`crate::exec::ExecSpace::par_for`], with `i` (the x
//! index) varying fastest to match the memory layout of
//! `exastro_amr::FArrayBox`.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Number of spatial dimensions supported by the suite.
///
/// Lower-dimensional problems are represented by degenerate boxes (e.g. a 2-D
/// problem has `lo.z() == hi.z() == 0`), matching how AMReX builds with
/// `AMREX_SPACEDIM` but the astro codes run 1-, 2-, and 3-D setups.
pub const SPACEDIM: usize = 3;

/// An integer vector in index space; one component per spatial dimension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntVect(pub [i32; SPACEDIM]);

impl IntVect {
    /// Construct from components.
    #[inline]
    pub const fn new(i: i32, j: i32, k: i32) -> Self {
        IntVect([i, j, k])
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        IntVect([0; SPACEDIM])
    }

    /// The unit vector (1, 1, 1).
    #[inline]
    pub const fn unit() -> Self {
        IntVect([1; SPACEDIM])
    }

    /// A vector with `v` in every component.
    #[inline]
    pub const fn splat(v: i32) -> Self {
        IntVect([v; SPACEDIM])
    }

    /// The unit vector along dimension `dir` (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn dim_vec(dir: usize) -> Self {
        let mut v = [0; SPACEDIM];
        v[dir] = 1;
        IntVect(v)
    }

    /// First (x) component.
    #[inline]
    pub const fn x(&self) -> i32 {
        self.0[0]
    }
    /// Second (y) component.
    #[inline]
    pub const fn y(&self) -> i32 {
        self.0[1]
    }
    /// Third (z) component.
    #[inline]
    pub const fn z(&self) -> i32 {
        self.0[2]
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Self) -> Self {
        IntVect([
            self.0[0].min(o.0[0]),
            self.0[1].min(o.0[1]),
            self.0[2].min(o.0[2]),
        ])
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        IntVect([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
        ])
    }

    /// True if every component of `self` is `<=` the matching component of `o`.
    #[inline]
    pub fn all_le(&self, o: &Self) -> bool {
        self.0[0] <= o.0[0] && self.0[1] <= o.0[1] && self.0[2] <= o.0[2]
    }

    /// True if every component of `self` is `>=` the matching component of `o`.
    #[inline]
    pub fn all_ge(&self, o: &Self) -> bool {
        self.0[0] >= o.0[0] && self.0[1] >= o.0[1] && self.0[2] >= o.0[2]
    }

    /// Coarsen each component by `ratio` (flooring division, as AMReX does).
    #[inline]
    pub fn coarsen(self, ratio: IntVect) -> Self {
        #[inline]
        fn cdiv(a: i32, r: i32) -> i32 {
            if a >= 0 {
                a / r
            } else {
                -((-a + r - 1) / r)
            }
        }
        IntVect([
            cdiv(self.0[0], ratio.0[0]),
            cdiv(self.0[1], ratio.0[1]),
            cdiv(self.0[2], ratio.0[2]),
        ])
    }

    /// Component-wise product with another vector.
    #[inline]
    pub fn scale(self, o: Self) -> Self {
        IntVect([self.0[0] * o.0[0], self.0[1] * o.0[1], self.0[2] * o.0[2]])
    }

    /// Sum of components.
    #[inline]
    pub fn sum(&self) -> i64 {
        self.0[0] as i64 + self.0[1] as i64 + self.0[2] as i64
    }

    /// Product of components.
    #[inline]
    pub fn product(&self) -> i64 {
        self.0[0] as i64 * self.0[1] as i64 * self.0[2] as i64
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(&self) -> i32 {
        self.0[0].max(self.0[1]).max(self.0[2])
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(&self) -> i32 {
        self.0[0].min(self.0[1]).min(self.0[2])
    }
}

impl fmt::Debug for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.0[0], self.0[1], self.0[2])
    }
}

impl fmt::Display for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Index<usize> for IntVect {
    type Output = i32;
    #[inline]
    fn index(&self, d: usize) -> &i32 {
        &self.0[d]
    }
}

impl IndexMut<usize> for IntVect {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut i32 {
        &mut self.0[d]
    }
}

impl Add for IntVect {
    type Output = IntVect;
    #[inline]
    fn add(self, o: Self) -> Self {
        IntVect([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl AddAssign for IntVect {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for IntVect {
    type Output = IntVect;
    #[inline]
    fn sub(self, o: Self) -> Self {
        IntVect([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl SubAssign for IntVect {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Mul<i32> for IntVect {
    type Output = IntVect;
    #[inline]
    fn mul(self, s: i32) -> Self {
        IntVect([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Neg for IntVect {
    type Output = IntVect;
    #[inline]
    fn neg(self) -> Self {
        IntVect([-self.0[0], -self.0[1], -self.0[2]])
    }
}

/// A rectangular region of index space with *inclusive* bounds `[lo, hi]`.
///
/// This is the fundamental unit of work distribution: a `MultiFab` lives on a
/// collection of `IndexBox`es, MPI ranks own boxes, tiles are sub-boxes, and
/// on a massively parallel device every zone of the box becomes one thread
/// (see Figure 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexBox {
    lo: IntVect,
    hi: IntVect,
}

impl IndexBox {
    /// Construct a box from inclusive corners. An "empty" box is any box with
    /// `hi < lo` in some dimension.
    #[inline]
    pub const fn new(lo: IntVect, hi: IntVect) -> Self {
        IndexBox { lo, hi }
    }

    /// The box `[0, n-1]^3` for a cubic domain of `n` zones per side.
    #[inline]
    pub fn cube(n: i32) -> Self {
        IndexBox::new(IntVect::zero(), IntVect::splat(n - 1))
    }

    /// A box spanning `[0, n_d - 1]` in each dimension.
    #[inline]
    pub fn sized(n: IntVect) -> Self {
        IndexBox::new(IntVect::zero(), n - IntVect::unit())
    }

    /// A canonical empty box.
    #[inline]
    pub fn empty() -> Self {
        IndexBox::new(IntVect::unit(), IntVect::zero())
    }

    /// Inclusive low corner.
    #[inline]
    pub const fn lo(&self) -> IntVect {
        self.lo
    }
    /// Inclusive high corner.
    #[inline]
    pub const fn hi(&self) -> IntVect {
        self.hi
    }

    /// True if the box contains no zones.
    #[inline]
    pub fn is_empty(&self) -> bool {
        !self.lo.all_le(&self.hi)
    }

    /// Zones per dimension (0 for empty boxes).
    #[inline]
    pub fn size(&self) -> IntVect {
        if self.is_empty() {
            IntVect::zero()
        } else {
            self.hi - self.lo + IntVect::unit()
        }
    }

    /// Total number of zones in the box.
    #[inline]
    pub fn num_zones(&self) -> i64 {
        self.size().product()
    }

    /// Length of the box along dimension `d`.
    #[inline]
    pub fn length(&self, d: usize) -> i32 {
        self.size()[d]
    }

    /// True if zone `(i, j, k)` lies inside the box.
    #[inline]
    pub fn contains(&self, iv: IntVect) -> bool {
        self.lo.all_le(&iv) && iv.all_le(&self.hi)
    }

    /// True if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &IndexBox) -> bool {
        other.is_empty() || (self.lo.all_le(&other.lo) && other.hi.all_le(&self.hi))
    }

    /// True if the two boxes share at least one zone.
    #[inline]
    pub fn intersects(&self, other: &IndexBox) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The overlap of two boxes (possibly empty).
    #[inline]
    pub fn intersection(&self, other: &IndexBox) -> IndexBox {
        IndexBox::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Grow the box by `n` zones on every face (negative `n` shrinks).
    #[inline]
    pub fn grow(&self, n: i32) -> IndexBox {
        IndexBox::new(self.lo - IntVect::splat(n), self.hi + IntVect::splat(n))
    }

    /// Grow by `n` zones on both faces of dimension `d` only.
    #[inline]
    pub fn grow_dir(&self, d: usize, n: i32) -> IndexBox {
        let mut lo = self.lo;
        let mut hi = self.hi;
        lo[d] -= n;
        hi[d] += n;
        IndexBox::new(lo, hi)
    }

    /// Translate the box by `shift`.
    #[inline]
    pub fn shift(&self, shift: IntVect) -> IndexBox {
        IndexBox::new(self.lo + shift, self.hi + shift)
    }

    /// Refine: each zone becomes a `ratio`-cubed block of finer zones.
    #[inline]
    pub fn refine(&self, ratio: i32) -> IndexBox {
        let r = IntVect::splat(ratio);
        IndexBox::new(self.lo.scale(r), self.hi.scale(r) + r - IntVect::unit())
    }

    /// Coarsen by `ratio` (the inverse of [`IndexBox::refine`]; covers at
    /// least the original region).
    #[inline]
    pub fn coarsen(&self, ratio: i32) -> IndexBox {
        let r = IntVect::splat(ratio);
        IndexBox::new(self.lo.coarsen(r), self.hi.coarsen(r))
    }

    /// Split the box at index `at` along dimension `d`, returning
    /// `(lower, upper)` where `upper` starts at `at`. `at` must satisfy
    /// `lo[d] < at <= hi[d]` for both halves to be non-empty.
    pub fn chop(&self, d: usize, at: i32) -> (IndexBox, IndexBox) {
        let mut lo_hi = self.hi;
        lo_hi[d] = at - 1;
        let mut hi_lo = self.lo;
        hi_lo[d] = at;
        (IndexBox::new(self.lo, lo_hi), IndexBox::new(hi_lo, self.hi))
    }

    /// The dimension in which the box is longest.
    pub fn longest_dir(&self) -> usize {
        let s = self.size();
        let mut d = 0;
        for c in 1..SPACEDIM {
            if s[c] > s[d] {
                d = c;
            }
        }
        d
    }

    /// Iterate over all zones of the box, `x` fastest (memory order).
    pub fn iter(&self) -> ZoneIter {
        ZoneIter {
            bx: *self,
            cur: self.lo,
            done: self.is_empty(),
        }
    }

    /// Linear offset of zone `iv` within the box in x-fastest order.
    /// Caller must ensure `self.contains(iv)`.
    #[inline]
    pub fn linear_index(&self, iv: IntVect) -> usize {
        let s = self.size();
        let d = iv - self.lo;
        (d.0[0] as usize)
            + (s.0[0] as usize) * ((d.0[1] as usize) + (s.0[1] as usize) * (d.0[2] as usize))
    }

    /// The minimal box containing both operands.
    #[inline]
    pub fn union_hull(&self, other: &IndexBox) -> IndexBox {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            IndexBox::new(self.lo.min(other.lo), self.hi.max(other.hi))
        }
    }

    /// Decompose `self \ other` into a disjoint set of boxes.
    pub fn difference(&self, other: &IndexBox) -> Vec<IndexBox> {
        let isect = self.intersection(other);
        if isect.is_empty() {
            return vec![*self];
        }
        if isect == *self {
            return vec![];
        }
        let mut out = Vec::new();
        let mut rest = *self;
        for d in 0..SPACEDIM {
            if rest.lo[d] < isect.lo[d] {
                let (below, above) = rest.chop(d, isect.lo[d]);
                out.push(below);
                rest = above;
            }
            if rest.hi[d] > isect.hi[d] {
                let (below, above) = rest.chop(d, isect.hi[d] + 1);
                out.push(above);
                rest = below;
            }
        }
        debug_assert_eq!(rest, isect);
        out
    }
}

impl fmt::Debug for IndexBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?}]", self.lo, self.hi)
    }
}

impl fmt::Display for IndexBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the zones of an [`IndexBox`] in x-fastest order.
pub struct ZoneIter {
    bx: IndexBox,
    cur: IntVect,
    done: bool,
}

impl Iterator for ZoneIter {
    type Item = IntVect;

    fn next(&mut self) -> Option<IntVect> {
        if self.done {
            return None;
        }
        let out = self.cur;
        self.cur[0] += 1;
        if self.cur[0] > self.bx.hi[0] {
            self.cur[0] = self.bx.lo[0];
            self.cur[1] += 1;
            if self.cur[1] > self.bx.hi[1] {
                self.cur[1] = self.bx.lo[1];
                self.cur[2] += 1;
                if self.cur[2] > self.bx.hi[2] {
                    self.done = true;
                }
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        // Remaining = zones from cur to end in x-fastest order.
        let s = self.bx.size();
        let d = self.cur - self.bx.lo();
        let total = self.bx.num_zones();
        let consumed =
            d.0[0] as i64 + s.0[0] as i64 * (d.0[1] as i64 + s.0[1] as i64 * d.0[2] as i64);
        let n = (total - consumed) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ZoneIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intvect_arithmetic() {
        let a = IntVect::new(1, 2, 3);
        let b = IntVect::new(4, 5, 6);
        assert_eq!(a + b, IntVect::new(5, 7, 9));
        assert_eq!(b - a, IntVect::new(3, 3, 3));
        assert_eq!(a * 2, IntVect::new(2, 4, 6));
        assert_eq!(-a, IntVect::new(-1, -2, -3));
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.product(), 6);
        assert_eq!(a.sum(), 6);
    }

    #[test]
    fn intvect_coarsen_negative() {
        // Flooring division: -1 coarsened by 2 must map to -1, not 0.
        assert_eq!(
            IntVect::new(-1, 0, 3).coarsen(IntVect::splat(2)),
            IntVect::new(-1, 0, 1)
        );
        assert_eq!(
            IntVect::new(-4, -3, 4).coarsen(IntVect::splat(4)),
            IntVect::new(-1, -1, 1)
        );
    }

    #[test]
    fn box_basic() {
        let b = IndexBox::cube(8);
        assert_eq!(b.num_zones(), 512);
        assert_eq!(b.size(), IntVect::splat(8));
        assert!(b.contains(IntVect::zero()));
        assert!(b.contains(IntVect::splat(7)));
        assert!(!b.contains(IntVect::splat(8)));
        assert!(!b.is_empty());
        assert!(IndexBox::empty().is_empty());
        assert_eq!(IndexBox::empty().num_zones(), 0);
    }

    #[test]
    fn box_grow_shrink() {
        let b = IndexBox::cube(4).grow(2);
        assert_eq!(b.lo(), IntVect::splat(-2));
        assert_eq!(b.hi(), IntVect::splat(5));
        assert_eq!(b.grow(-2), IndexBox::cube(4));
        let g = IndexBox::cube(4).grow_dir(1, 3);
        assert_eq!(g.lo(), IntVect::new(0, -3, 0));
        assert_eq!(g.hi(), IntVect::new(3, 6, 3));
    }

    #[test]
    fn box_intersection() {
        let a = IndexBox::new(IntVect::zero(), IntVect::splat(7));
        let b = IndexBox::new(IntVect::splat(4), IntVect::splat(11));
        let c = a.intersection(&b);
        assert_eq!(c, IndexBox::new(IntVect::splat(4), IntVect::splat(7)));
        assert!(a.intersects(&b));
        let far = b.shift(IntVect::splat(100));
        assert!(!a.intersects(&far));
        assert!(a.intersection(&far).is_empty());
    }

    #[test]
    fn box_refine_coarsen_roundtrip() {
        let b = IndexBox::new(IntVect::new(2, -4, 0), IntVect::new(5, -1, 3));
        assert_eq!(b.refine(2).coarsen(2), b);
        assert_eq!(b.refine(4).num_zones(), b.num_zones() * 64);
    }

    #[test]
    fn box_chop() {
        let b = IndexBox::cube(8);
        let (lo, hi) = b.chop(0, 3);
        assert_eq!(lo.num_zones(), 3 * 64);
        assert_eq!(hi.num_zones(), 5 * 64);
        assert_eq!(lo.union_hull(&hi), b);
        assert!(!lo.intersects(&hi));
    }

    #[test]
    fn box_iter_order_and_count() {
        let b = IndexBox::new(IntVect::new(1, 2, 3), IntVect::new(2, 3, 4));
        let zones: Vec<_> = b.iter().collect();
        assert_eq!(zones.len() as i64, b.num_zones());
        // x fastest
        assert_eq!(zones[0], IntVect::new(1, 2, 3));
        assert_eq!(zones[1], IntVect::new(2, 2, 3));
        assert_eq!(zones[2], IntVect::new(1, 3, 3));
        assert_eq!(*zones.last().unwrap(), IntVect::new(2, 3, 4));
        // linear_index agrees with iteration order
        for (n, iv) in b.iter().enumerate() {
            assert_eq!(b.linear_index(iv), n);
        }
    }

    #[test]
    fn box_iter_len() {
        let b = IndexBox::cube(5);
        let mut it = b.iter();
        assert_eq!(it.len(), 125);
        it.next();
        assert_eq!(it.len(), 124);
    }

    #[test]
    fn box_difference_partitions() {
        let a = IndexBox::cube(8);
        let b = IndexBox::new(IntVect::splat(2), IntVect::splat(5));
        let parts = a.difference(&b);
        let total: i64 = parts.iter().map(|p| p.num_zones()).sum();
        assert_eq!(total, a.num_zones() - b.num_zones());
        // Disjointness
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.intersects(&b));
            for q in &parts[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
        // Removing nothing returns self; removing everything returns empty.
        assert_eq!(a.difference(&a.shift(IntVect::splat(50))), vec![a]);
        assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn box_longest_dir() {
        let b = IndexBox::sized(IntVect::new(4, 9, 2));
        assert_eq!(b.longest_dir(), 1);
    }
}
