//! # exastro-parallel
//!
//! The execution-backend abstraction layer of the `exastro` suite — the Rust
//! analogue of the AMReX GPU machinery described in §III of *Preparing
//! Nuclear Astrophysics for Exascale* (Katz et al., SC 2020).
//!
//! The crate provides:
//!
//! * [`index`] — `IntVect` / `IndexBox` index-space primitives that every
//!   physics loop iterates over;
//! * [`exec`] — the `parallel_for` abstraction: one closure body, three
//!   execution spaces (serial, coarse-grained tiled threads, per-zone
//!   simulated device);
//! * [`device`] — the simulated accelerator with a calibrated cost model
//!   (launch latency, occupancy, register spilling, allocation latency,
//!   memory oversubscription);
//! * [`arena`] — the caching pool allocator and its malloc-per-call baseline;
//! * [`pool`] — the persistent worker-thread pool behind the tiled backend:
//!   threads are spawned once per process and parallel regions are a pointer
//!   handoff plus a condvar wake, not a thread spawn;
//! * [`graph`] — the dependency-graph task scheduler over the pool: boxes
//!   become tasks, ghost exchanges become edges, interior kernels run while
//!   halos are in flight (the overlap behind the two-phase comm API);
//! * [`profiler`] — TinyProfiler-style execution telemetry: named nested
//!   regions accumulating wall time, zones processed, and simulated device
//!   microseconds, rendered as an end-of-run report.
//!
//! Since no real GPU is available in this reproduction, kernels launched on
//! the device space execute on the host — producing bit-identical physics —
//! while the device is charged a modelled execution time used by the
//! `exastro-machine` cluster simulator to regenerate the paper's scaling
//! figures.

// `deny` rather than `forbid`: the worker pool's dispatch core is the one
// audited module allowed to opt back in (see crates/parallel/src/pool.rs for
// the soundness argument); everything else remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod device;
pub mod exec;
pub mod graph;
pub mod index;
pub mod pool;
pub mod profiler;

pub use arena::{Arena, ArenaStats, MallocArena, PoolArena, ScratchBuf};
pub use device::{DeviceConfig, DeviceStats, KernelProfile, SimDevice};
pub use exec::{tiles_of, ExecSpace, TiledExec};
pub use graph::{GraphError, GraphRunStats, TaskGraph};
pub use index::{IndexBox, IntVect, SPACEDIM};
pub use pool::{
    par_each_mut, par_each_mut_bounded, par_index_each, par_map_fold, try_par_for, PoolStats,
    Tasks, WorkerPool,
};
pub use profiler::{InstalledStack, Profiler, Region, RegionStats};

/// The floating-point type used throughout the suite.
pub type Real = f64;
