//! The persistent worker-pool runtime.
//!
//! Before this module existed, [`crate::exec::ExecSpace::Tiled`] spawned and
//! joined fresh OS threads inside *every* `par_for`/`reduce` call. A thread
//! spawn costs tens of microseconds to milliseconds; a small-box kernel costs
//! microseconds — so the box-size sweeps behind Figures 2–3 of the paper were
//! dominated by thread churn instead of the execution model under study.
//! AMReX (like OpenMP) answers with a *persistent thread team*: workers are
//! spawned once, sleep on a condition variable between parallel regions, and
//! a region is a pointer handoff plus a wake, not a spawn.
//!
//! ## Protocol
//!
//! A parallel region publishes a type-erased job into a single slot guarded
//! by a mutex, wakes the workers, and participates in the work itself.
//! Workers *register* into the job under the slot lock, claim task indices
//! from a shared atomic counter, and *depart* through a per-job completion
//! latch. The caller closes the slot (preventing late registration), then
//! blocks until every registered worker has departed. Because registration
//! happens under the same lock that the caller uses to close the slot, no
//! worker can touch a job after its region has returned — which is what
//! makes the lifetime erasure in [`WorkerPool::run`] sound.
//!
//! Nested parallelism and concurrent regions from multiple user threads are
//! detected (thread-local flag / occupied slot) and execute inline on the
//! calling thread — correct, just serial, and counted in [`PoolStats`].

#![allow(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Counters describing pool behaviour since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Resident worker threads (excluding callers).
    pub threads: usize,
    /// OS threads ever spawned by the pool. After warm-up this must not
    /// grow — the property the per-call-scope backend could not offer.
    pub threads_spawned: u64,
    /// Parallel regions requested through [`WorkerPool::run`].
    pub regions: u64,
    /// Regions dispatched to the worker team.
    pub pooled_regions: u64,
    /// Regions executed inline (too small, nested, or slot contended).
    pub serial_regions: u64,
}

impl PoolStats {
    /// Fraction of regions served by the worker team.
    pub fn pool_hit_rate(&self) -> f64 {
        if self.regions == 0 {
            return 1.0;
        }
        self.pooled_regions as f64 / self.regions as f64
    }
}

/// A claim ticket for task indices inside a parallel region. Each call to
/// [`Tasks::next_task`] returns a distinct index in `0..ntasks`; when the
/// counter is exhausted it returns `None`.
pub struct Tasks<'a> {
    next: &'a AtomicUsize,
    ntasks: usize,
}

impl Tasks<'_> {
    /// Claim the next unclaimed task index, if any.
    #[inline]
    pub fn next_task(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.ntasks {
            Some(i)
        } else {
            None
        }
    }

    /// Total tasks in this region.
    pub fn len(&self) -> usize {
        self.ntasks
    }

    /// True if the region has no tasks.
    pub fn is_empty(&self) -> bool {
        self.ntasks == 0
    }
}

/// Per-job shared state, owned by the caller's stack frame for the duration
/// of the region.
struct JobCore {
    next: AtomicUsize,
    ntasks: usize,
    departures: Mutex<usize>,
    departed_cv: Condvar,
    /// First worker panic payload, rethrown verbatim on the caller thread
    /// so `panic!("zone 372 ...")` survives the pool boundary.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// The submitting thread's profiler region stack. Workers install it for
    /// the job's duration so `Profiler::record_*` calls inside the body
    /// attribute to the submitter's region path, not an empty one
    /// (`REGION_STACK` is thread-local and would otherwise read as "(top)"
    /// on a worker).
    region_stack: Vec<String>,
    /// Trace-span label for worker participation, precomputed on the
    /// submitting thread (None when telemetry is disabled).
    trace_label: Option<String>,
}

/// The participant body with its lifetime erased. Soundness: the registration
/// protocol guarantees no worker dereferences `body`/`core` after the
/// caller's `run` frame (which owns both) returns.
struct JobMsg {
    seq: u64,
    core: *const JobCore,
    body: *const (dyn Fn(Tasks<'_>) + Sync),
    max_workers: usize,
    registered: usize,
}

// SAFETY: the pointers are only dereferenced while the owning `run` frame is
// provably alive (see module docs); the pointee itself is Sync.
unsafe impl Send for JobMsg {}

struct Shared {
    slot: Mutex<Option<JobMsg>>,
    wake: Condvar,
}

thread_local! {
    /// True while this thread is executing a pool job (re-entrancy guard).
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent team of worker threads executing tiled parallel regions.
pub struct WorkerPool {
    shared: Arc<Shared>,
    nworkers: usize,
    seq: AtomicU64,
    spawned: AtomicU64,
    regions: AtomicU64,
    pooled: AtomicU64,
    serial: AtomicU64,
}

impl WorkerPool {
    /// Build a pool with `nworkers` resident workers. The process-wide pool
    /// from [`WorkerPool::global`] is what production code should use; this
    /// constructor exists for tests that need an isolated team.
    pub fn new(nworkers: usize) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new(None),
            wake: Condvar::new(),
        });
        let pool = WorkerPool {
            shared: shared.clone(),
            nworkers,
            seq: AtomicU64::new(0),
            spawned: AtomicU64::new(0),
            regions: AtomicU64::new(0),
            pooled: AtomicU64::new(0),
            serial: AtomicU64::new(0),
        };
        for w in 0..nworkers {
            let shared = shared.clone();
            pool.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("exastro-worker-{w}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        pool
    }

    /// The process-wide pool, started lazily on first use with
    /// `max(1, available_parallelism - 1)` workers (the calling thread is
    /// the remaining participant).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let ncpu = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(ncpu.saturating_sub(1).max(1))
        })
    }

    /// Resident worker count.
    pub fn nworkers(&self) -> usize {
        self.nworkers
    }

    /// Snapshot of pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.nworkers,
            threads_spawned: self.spawned.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            pooled_regions: self.pooled.load(Ordering::Relaxed),
            serial_regions: self.serial.load(Ordering::Relaxed),
        }
    }

    /// Execute a parallel region of `ntasks` tasks with at most
    /// `max_threads` participants (workers + the calling thread). `body` is
    /// invoked once per participant and should drain [`Tasks`] until empty.
    ///
    /// Falls back to a single inline `body` call when the region is trivial,
    /// the calling thread is itself a pool worker (nested parallelism), or
    /// another thread's region currently owns the team.
    pub fn run(&self, ntasks: usize, max_threads: usize, body: &(dyn Fn(Tasks<'_>) + Sync)) {
        self.regions.fetch_add(1, Ordering::Relaxed);
        let region_stack = crate::profiler::Profiler::current_stack();
        let trace_label = if exastro_telemetry::Telemetry::is_enabled() {
            Some(format!(
                "pool:{}",
                region_stack.last().map(String::as_str).unwrap_or("(top)")
            ))
        } else {
            None
        };
        let core = JobCore {
            next: AtomicUsize::new(0),
            ntasks,
            departures: Mutex::new(0),
            departed_cv: Condvar::new(),
            panic: Mutex::new(None),
            region_stack,
            trace_label,
        };
        let want = max_threads.min(self.nworkers + 1);
        let nested = IN_POOL_WORKER.with(|f| f.get());
        if ntasks <= 1 || want <= 1 || self.nworkers == 0 || nested {
            self.serial.fetch_add(1, Ordering::Relaxed);
            body(Tasks {
                next: &core.next,
                ntasks,
            });
            return;
        }
        // SAFETY: we erase the closure's borrow lifetime to park it in the
        // dispatch slot. The registration/departure protocol below ensures
        // every dereference happens before this frame returns.
        let body_erased: *const (dyn Fn(Tasks<'_>) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(Tasks<'_>) + Sync), *const (dyn Fn(Tasks<'_>) + Sync)>(
                body,
            )
        };
        {
            let mut slot = self.shared.slot.lock().unwrap();
            if slot.is_some() {
                // Another user thread's region is in flight: run inline
                // rather than queueing (regions are short; fairness is not
                // worth a queue's complexity here).
                drop(slot);
                self.serial.fetch_add(1, Ordering::Relaxed);
                body(Tasks {
                    next: &core.next,
                    ntasks,
                });
                return;
            }
            *slot = Some(JobMsg {
                seq: self.seq.fetch_add(1, Ordering::Relaxed).wrapping_add(1),
                core: &core,
                body: body_erased,
                max_workers: want - 1,
                registered: 0,
            });
        }
        // Wake after releasing the slot lock so woken workers don't
        // immediately block on the mutex we hold.
        self.shared.wake.notify_all();
        self.pooled.fetch_add(1, Ordering::Relaxed);
        // The caller is participant zero.
        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            body(Tasks {
                next: &core.next,
                ntasks,
            })
        }));
        // Close the slot: after this, no worker can register.
        let expected = {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.take().map(|msg| msg.registered).unwrap_or(0)
        };
        // Wait until every registered worker has departed.
        let mut departed = core.departures.lock().unwrap();
        while *departed < expected {
            departed = core.departed_cv.wait(departed).unwrap();
        }
        drop(departed);
        if let Err(p) = caller_result {
            std::panic::resume_unwind(p);
        }
        let worker_panic = core.panic.lock().unwrap().take();
        if let Some(p) = worker_panic {
            // Rethrow the worker's own payload, not a generic message.
            std::panic::resume_unwind(p);
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut last_seq = 0u64;
    loop {
        // Wait for a job we have not served yet and that still has room.
        let (core_ptr, body_ptr) = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if let Some(msg) = slot.as_mut() {
                    if msg.seq != last_seq {
                        last_seq = msg.seq;
                        if msg.registered < msg.max_workers {
                            msg.registered += 1;
                            break (msg.core, msg.body);
                        }
                        // Team full for this job: skip it and sleep.
                    }
                }
                slot = shared.wake.wait(slot).unwrap();
            }
        };
        // SAFETY: we registered under the slot lock, so the caller's `run`
        // frame cannot return (and the job cannot be freed) until our
        // departure below. See module docs.
        let core: &JobCore = unsafe { &*core_ptr };
        let body: &(dyn Fn(Tasks<'_>) + Sync) = unsafe { &*body_ptr };
        IN_POOL_WORKER.with(|f| f.set(true));
        let result = {
            // Attribute profiler counters recorded inside the body to the
            // submitting thread's region path, and (when telemetry is on)
            // mark this worker's participation with a trace span carrying
            // *this* thread's id.
            let _stack = crate::profiler::Profiler::install_stack(core.region_stack.clone());
            if let Some(label) = &core.trace_label {
                exastro_telemetry::Telemetry::trace_begin(label);
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                body(Tasks {
                    next: &core.next,
                    ntasks: core.ntasks,
                })
            }));
            if let Some(label) = &core.trace_label {
                exastro_telemetry::Telemetry::trace_end(label);
            }
            r
        };
        IN_POOL_WORKER.with(|f| f.set(false));
        if let Err(p) = result {
            let mut slot = core.panic.lock().unwrap();
            // Keep the first payload; later ones are byproducts of the same
            // failed region.
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        // Depart: after the unlock below we never touch the job again.
        let mut departed = core.departures.lock().unwrap();
        *departed += 1;
        core.departed_cv.notify_all();
    }
}

/// Run `f(i)` for every `i in 0..n` on the global pool.
pub fn par_index_each<F: Fn(usize) + Sync>(n: usize, max_threads: usize, f: F) {
    WorkerPool::global().run(n, max_threads, &|tasks: Tasks<'_>| {
        while let Some(i) = tasks.next_task() {
            f(i);
        }
    });
}

/// Run `f(i, &mut items[i])` for every element, distributing disjoint
/// elements across the global pool.
pub fn par_each_mut<T: Send, F: Fn(usize, &mut T) + Sync>(items: &mut [T], f: F) {
    par_each_mut_bounded(WorkerPool::global(), items, usize::MAX, f);
}

/// [`par_each_mut`] on an explicit pool with a participant cap.
///
/// A cap of 0 is clamped to 1 (inline serial): callers like the task-graph
/// scheduler pass *computed* caps (ready-set widths, buffer counts) that can
/// legitimately reach zero, and "no parallelism" must still mean "every
/// element is processed".
pub fn par_each_mut_bounded<T: Send, F: Fn(usize, &mut T) + Sync>(
    pool: &WorkerPool,
    items: &mut [T],
    max_threads: usize,
    f: F,
) {
    struct SlicePtr<T>(*mut T);
    // SAFETY: each index is claimed exactly once (Tasks::next_task), so the
    // `&mut` references handed out are disjoint.
    unsafe impl<T: Send> Sync for SlicePtr<T> {}
    let n = items.len();
    let ptr = SlicePtr(items.as_mut_ptr());
    let pref = &ptr;
    pool.run(n, max_threads.max(1), &|tasks: Tasks<'_>| {
        while let Some(i) = tasks.next_task() {
            // SAFETY: i < n and claimed exactly once; see SlicePtr.
            let item: &mut T = unsafe { &mut *pref.0.add(i) };
            f(i, item);
        }
    });
}

/// Fallible parallel-for: run `f(i)` for every `i in 0..n` on the global
/// pool and collect the failures instead of unwinding the team. Every task
/// runs regardless of other tasks' errors (a burn sweep wants the complete
/// set of hard zones, not just the first), and the error list is sorted by
/// index so the result is deterministic under any scheduling.
pub fn try_par_for<E, F>(n: usize, max_threads: usize, f: F) -> Result<(), Vec<(usize, E)>>
where
    E: Send,
    F: Fn(usize) -> Result<(), E> + Sync,
{
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    WorkerPool::global().run(n, max_threads, &|tasks: Tasks<'_>| {
        let mut local: Vec<(usize, E)> = Vec::new();
        while let Some(i) = tasks.next_task() {
            if let Err(e) = f(i) {
                local.push((i, e));
            }
        }
        if !local.is_empty() {
            errors.lock().unwrap().append(&mut local);
        }
    });
    let mut errs = errors.into_inner().unwrap();
    if errs.is_empty() {
        Ok(())
    } else {
        errs.sort_by_key(|(i, _)| *i);
        Err(errs)
    }
}

/// Fill `out[i] = f(i)` in parallel, then fold the results **in index
/// order**, so the reduction is deterministic regardless of scheduling.
pub fn par_map_fold<T, F, C>(n: usize, init: T, f: F, combine: C) -> T
where
    T: Send + Clone,
    F: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let mut partials = vec![init.clone(); n];
    par_each_mut(&mut partials, |i, slot| *slot = f(i));
    partials.into_iter().fold(init, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let n = 1 + (round % 17);
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, usize::MAX, &|tasks: Tasks<'_>| {
                while let Some(i) = tasks.next_task() {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn pool_never_spawns_after_warmup() {
        let pool = WorkerPool::new(3);
        let spawned = pool.stats().threads_spawned;
        assert_eq!(spawned, 3);
        for _ in 0..200 {
            pool.run(8, usize::MAX, &|tasks: Tasks<'_>| {
                while let Some(i) = tasks.next_task() {
                    std::hint::black_box(i);
                }
            });
        }
        let s = pool.stats();
        assert_eq!(s.threads_spawned, spawned, "steady state must not spawn");
        assert_eq!(s.regions, 200);
        assert_eq!(s.pooled_regions + s.serial_regions, 200);
    }

    #[test]
    fn nested_regions_fall_back_to_serial() {
        let pool = Arc::new(WorkerPool::new(2));
        let inner_ran = AtomicUsize::new(0);
        pool.run(4, usize::MAX, &|tasks: Tasks<'_>| {
            while let Some(_i) = tasks.next_task() {
                // A nested region from whatever thread runs this task: must
                // complete inline without deadlocking the team.
                let local = AtomicUsize::new(0);
                WorkerPool::global().run(4, usize::MAX, &|t2: Tasks<'_>| {
                    while let Some(_j) = t2.next_task() {
                        local.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert_eq!(local.load(Ordering::Relaxed), 4);
                inner_ran.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(inner_ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn par_each_mut_gives_disjoint_access() {
        let mut v: Vec<u64> = vec![0; 100];
        par_each_mut(&mut v, |i, x| *x = (i * i) as u64);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i * i) as u64);
        }
    }

    #[test]
    fn bounded_cap_of_zero_clamps_to_serial_and_processes_everything() {
        // The task-graph scheduler passes computed caps; a width of 0 must
        // degrade to serial execution, never skip work or hang.
        let pool = WorkerPool::new(2);
        let mut v: Vec<u64> = vec![0; 37];
        par_each_mut_bounded(&pool, &mut v, 0, |i, x| *x = i as u64 + 1);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 + 1, "element {i} skipped under cap 0");
        }
        // Still correct for an empty slice under cap 0.
        let mut empty: Vec<u64> = Vec::new();
        par_each_mut_bounded(&pool, &mut empty, 0, |_, _| unreachable!());
    }

    #[test]
    fn par_map_fold_is_deterministic() {
        let a = par_map_fold(64, 0.0f64, |i| 1.0 / (i + 1) as f64, |x, y| x + y);
        let b = par_map_fold(64, 0.0f64, |i| 1.0 / (i + 1) as f64, |x, y| x + y);
        // Bit-for-bit equal: partials fold in index order.
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn zero_and_one_task_regions_run_inline() {
        let pool = WorkerPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run(0, usize::MAX, &|tasks: Tasks<'_>| {
            assert!(tasks.next_task().is_none());
            hits.fetch_add(1, Ordering::Relaxed);
        });
        pool.run(1, usize::MAX, &|tasks: Tasks<'_>| {
            while let Some(_i) = tasks.next_task() {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(pool.stats().serial_regions, 2);
    }

    #[test]
    fn worker_panic_payload_is_preserved() {
        // Force the panic onto a *worker* (not the caller): the caller
        // claims tasks greedily, so give it a long task 0 while a worker
        // hits the poisoned index.
        let pool = WorkerPool::new(2);
        for _ in 0..20 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.run(64, usize::MAX, &|tasks: Tasks<'_>| {
                    while let Some(i) = tasks.next_task() {
                        if i == 13 {
                            panic!("zone 13 failed: SingularMatrix");
                        }
                        std::thread::yield_now();
                    }
                });
            }));
            let payload = result.expect_err("region must propagate the panic");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(|s| s.as_str()))
                .expect("payload must still be the original message");
            assert_eq!(msg, "zone 13 failed: SingularMatrix");
        }
    }

    #[test]
    fn try_par_for_collects_all_errors_in_order() {
        let res: Result<(), Vec<(usize, String)>> = try_par_for(100, usize::MAX, |i| {
            if i % 10 == 3 {
                Err(format!("zone {i} is hard"))
            } else {
                Ok(())
            }
        });
        let errs = res.unwrap_err();
        let idx: Vec<usize> = errs.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![3, 13, 23, 33, 43, 53, 63, 73, 83, 93]);
        assert_eq!(errs[1].1, "zone 13 is hard");
    }

    #[test]
    fn try_par_for_ok_when_all_tasks_succeed() {
        let hits = AtomicUsize::new(0);
        let res: Result<(), Vec<(usize, ())>> = try_par_for(257, usize::MAX, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert!(res.is_ok());
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn worker_bodies_attribute_to_submitter_region() {
        use crate::profiler::Profiler;
        // Regression test for cross-thread region attribution: record_zones
        // calls made by pool workers must land on the *submitting* thread's
        // region path, not "(top)" (REGION_STACK is thread-local).
        let pool = WorkerPool::new(3);
        {
            let _r = Profiler::region("pool_attr_test");
            for _ in 0..20 {
                pool.run(64, usize::MAX, &|tasks: Tasks<'_>| {
                    while let Some(_i) = tasks.next_task() {
                        Profiler::record_zones(1);
                        std::thread::yield_now();
                    }
                });
            }
        }
        let s = Profiler::get("pool_attr_test").expect("region recorded");
        assert_eq!(s.zones, 20 * 64, "every zone attributes to the submitter");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, usize::MAX, &|tasks: Tasks<'_>| {
                while let Some(i) = tasks.next_task() {
                    if i == 7 {
                        panic!("boom");
                    }
                }
            });
        }));
        assert!(result.is_err());
        // The team must survive a panicked region.
        let ok = AtomicUsize::new(0);
        pool.run(8, usize::MAX, &|tasks: Tasks<'_>| {
            while let Some(_i) = tasks.next_task() {
                ok.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }
}
