//! Cross-stack execution telemetry (TinyProfiler analogue).
//!
//! Castro and MAESTROeX ship with AMReX's `TinyProfiler`: every coarse phase
//! of the timestep is wrapped in a named region, regions nest, and at the end
//! of the run a table of inclusive wall time per region path is printed. That
//! table is the evidence base for statements like "the burner is 60% of the
//! step" that drive porting priorities — exactly the methodology of §IV of
//! the paper. This module reproduces it for the simulated stack and extends
//! it with the two quantities our reproduction can attribute precisely:
//! zones processed per region and simulated device microseconds charged per
//! region.
//!
//! Usage: create a [`Region`] guard; it times from construction to drop and
//! attributes to the full slash-joined path of the live guards on this
//! thread. [`Profiler::report`] renders the table (plus worker-pool
//! statistics); [`Profiler::reset`] clears it between runs.

use crate::pool::WorkerPool;
use exastro_telemetry::Telemetry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Accumulated counters for one region path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionStats {
    /// Times the region was entered.
    pub calls: u64,
    /// Inclusive host wall time, nanoseconds.
    pub wall_ns: u64,
    /// Zones processed by `par_for`/reductions inside the region.
    pub zones: u64,
    /// Simulated device time charged inside the region, microseconds.
    pub device_us: f64,
    /// Payload bytes moved inside the region (checkpoint I/O traffic).
    pub bytes: u64,
    /// Recovery retries taken inside the region (burn ladder rungs beyond
    /// the first attempt, driver step rejections).
    pub retries: u64,
}

thread_local! {
    static REGION_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn table() -> &'static Mutex<HashMap<String, RegionStats>> {
    static TABLE: OnceLock<Mutex<HashMap<String, RegionStats>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide profiler. All methods are associated functions; there is
/// no instance to thread through call sites (matching TinyProfiler's use of
/// global state so instrumentation stays one line per region).
pub struct Profiler;

impl Profiler {
    /// Open a named region on this thread; close it by dropping the guard.
    /// When telemetry is enabled the region also emits a begin/end trace
    /// span (see `exastro_telemetry::Telemetry::write_trace`).
    pub fn region(name: &str) -> Region {
        Telemetry::trace_begin(name);
        REGION_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        Region {
            start: Instant::now(),
        }
    }

    /// A copy of this thread's open-region stack (innermost last). Used by
    /// the worker pool to carry the submitting thread's region context into
    /// pool workers (see [`Profiler::install_stack`]).
    pub fn current_stack() -> Vec<String> {
        REGION_STACK.with(|s| s.borrow().clone())
    }

    /// Replace this thread's region stack with `stack` until the returned
    /// guard drops (which restores the previous stack). Pool workers install
    /// the *submitting* thread's stack for a job's duration so that
    /// `record_zones`/`record_device_us` calls made inside the job body
    /// attribute to the submitter's region path instead of an empty one.
    ///
    /// The guard intentionally does not time anything: wall time for the
    /// region is measured once, on the submitting thread that holds the
    /// [`Region`] guard.
    pub fn install_stack(stack: Vec<String>) -> InstalledStack {
        let saved = REGION_STACK.with(|s| std::mem::replace(&mut *s.borrow_mut(), stack));
        InstalledStack { saved }
    }

    /// The current slash-joined region path on this thread, or "(top)" when
    /// no region is open.
    pub fn current_path() -> String {
        REGION_STACK.with(|s| {
            let s = s.borrow();
            if s.is_empty() {
                "(top)".to_string()
            } else {
                s.join("/")
            }
        })
    }

    /// Attribute `zones` processed zones to the innermost open region.
    pub fn record_zones(zones: u64) {
        if zones == 0 {
            return;
        }
        let path = Self::current_path();
        let mut t = table().lock().unwrap();
        t.entry(path).or_default().zones += zones;
    }

    /// Attribute `us` microseconds of simulated device time to the innermost
    /// open region.
    pub fn record_device_us(us: f64) {
        if us <= 0.0 {
            return;
        }
        let path = Self::current_path();
        let mut t = table().lock().unwrap();
        t.entry(path).or_default().device_us += us;
    }

    /// Attribute an externally measured duration of `ns` nanoseconds to the
    /// child region `name` of the current path (one call per invocation).
    /// This is for costs measured inside code that cannot hold a [`Region`]
    /// guard across its own timing boundaries — e.g. the burner attributes
    /// the integrator-reported Newton linear-algebra time to
    /// `burner/solve[dense]` without re-entering the integrator loop.
    pub fn record_ns(name: &str, ns: u64) {
        let parent = Self::current_path();
        let path = if parent == "(top)" {
            name.to_string()
        } else {
            format!("{parent}/{name}")
        };
        let mut t = table().lock().unwrap();
        let e = t.entry(path).or_default();
        e.calls += 1;
        e.wall_ns += ns;
    }

    /// Attribute `bytes` of payload I/O to the innermost open region.
    pub fn record_bytes(bytes: u64) {
        if bytes == 0 {
            return;
        }
        let path = Self::current_path();
        let mut t = table().lock().unwrap();
        t.entry(path).or_default().bytes += bytes;
    }

    /// Attribute `retries` recovery retries (burn-ladder rungs, step
    /// rejections) to the innermost open region.
    pub fn record_retries(retries: u64) {
        if retries == 0 {
            return;
        }
        let path = Self::current_path();
        let mut t = table().lock().unwrap();
        t.entry(path).or_default().retries += retries;
    }

    /// Snapshot the full region table (path -> stats).
    pub fn snapshot() -> HashMap<String, RegionStats> {
        table().lock().unwrap().clone()
    }

    /// Stats for one exact region path, if it was ever entered.
    pub fn get(path: &str) -> Option<RegionStats> {
        table().lock().unwrap().get(path).cloned()
    }

    /// Clear all accumulated counters (regions currently open on any thread
    /// will still record on close).
    pub fn reset() {
        table().lock().unwrap().clear();
    }

    /// The single accumulation pass shared by [`Profiler::report`] and
    /// [`Profiler::report_json`]: rows sorted by wall time descending with
    /// ties broken by region path (so equal-wall-time rows never reorder
    /// between runs), plus the top-level total used for the `%top` column.
    pub fn report_rows() -> (Vec<(String, RegionStats)>, u64) {
        let snap = Self::snapshot();
        let mut rows: Vec<(String, RegionStats)> = snap.into_iter().collect();
        rows.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then_with(|| a.0.cmp(&b.0)));
        let total_ns: u64 = rows
            .iter()
            .filter(|(p, _)| !p.contains('/'))
            .map(|(_, s)| s.wall_ns)
            .sum();
        (rows, total_ns)
    }

    /// Render the end-of-run report: regions sorted by inclusive wall time,
    /// with calls, zones, simulated device time, and worker-pool hit rates.
    pub fn report() -> String {
        let (rows, total_ns) = Self::report_rows();
        let mut out = String::new();
        out.push_str("===================== execution telemetry =====================\n");
        out.push_str(&format!(
            "{:<34} {:>7} {:>10} {:>6} {:>12} {:>12} {:>10} {:>8}\n",
            "region", "calls", "wall [ms]", "%top", "zones", "device [us]", "MB", "retries"
        ));
        for (path, s) in rows {
            let pct = if total_ns > 0 {
                100.0 * s.wall_ns as f64 / total_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<34} {:>7} {:>10.3} {:>5.1}% {:>12} {:>12.1} {:>10.2} {:>8}\n",
                path,
                s.calls,
                s.wall_ns as f64 / 1e6,
                pct,
                s.zones,
                s.device_us,
                s.bytes as f64 / 1e6,
                s.retries
            ));
        }
        let ps = WorkerPool::global().stats();
        out.push_str(&format!(
            "pool: {} worker(s), {} spawned (ever), {} regions ({} pooled / {} inline, hit rate {:.0}%)\n",
            ps.threads,
            ps.threads_spawned,
            ps.regions,
            ps.pooled_regions,
            ps.serial_regions,
            100.0 * ps.pool_hit_rate()
        ));
        out.push_str("===============================================================\n");
        out
    }

    /// The end-of-run report as a JSON object sharing the exact accumulation
    /// pass (and therefore row order) of [`Profiler::report`]:
    /// `{"total_ns": .., "regions": [{"path", "calls", "wall_ns", "zones",
    /// "device_us", "bytes", "retries"}, ..], "pool": {..}}`.
    pub fn report_json() -> String {
        let (rows, total_ns) = Self::report_rows();
        let mut out = String::new();
        out.push_str(&format!("{{\"total_ns\": {total_ns}, \"regions\": ["));
        for (i, (path, s)) in rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let device_us = if s.device_us.is_finite() {
                format!("{}", s.device_us)
            } else {
                "null".to_string()
            };
            out.push_str(&format!(
                "{{\"path\": \"{}\", \"calls\": {}, \"wall_ns\": {}, \"zones\": {}, \"device_us\": {}, \"bytes\": {}, \"retries\": {}}}",
                json_escape(path),
                s.calls,
                s.wall_ns,
                s.zones,
                device_us,
                s.bytes,
                s.retries,
            ));
        }
        let ps = WorkerPool::global().stats();
        out.push_str(&format!(
            "], \"pool\": {{\"threads\": {}, \"threads_spawned\": {}, \"regions\": {}, \"pooled_regions\": {}, \"serial_regions\": {}}}}}",
            ps.threads, ps.threads_spawned, ps.regions, ps.pooled_regions, ps.serial_regions,
        ));
        out
    }

    /// The end-of-run report extended with the device's host↔device traffic
    /// summary (checkpoint D2H copies, bytes, and simulated copy time).
    pub fn report_with_device(device: &crate::device::SimDevice) -> String {
        let mut out = Self::report();
        let ds = device.stats();
        out.push_str(&format!(
            "device {}: {} D2H copies, {:.2} MB, {:.1} simulated us\n",
            device.config().name,
            ds.d2h_copies,
            ds.d2h_bytes as f64 / 1e6,
            ds.d2h_us
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// RAII guard for one profiler region; closes (and records wall time) on
/// drop.
pub struct Region {
    start: Instant,
}

impl Drop for Region {
    fn drop(&mut self) {
        let wall = self.start.elapsed();
        let path = Profiler::current_path();
        let name = REGION_STACK.with(|s| s.borrow_mut().pop());
        if let Some(name) = name {
            Telemetry::trace_end(&name);
        }
        let mut t = table().lock().unwrap();
        let e = t.entry(path).or_default();
        e.calls += 1;
        e.wall_ns += wall.as_nanos() as u64;
    }
}

/// Guard returned by [`Profiler::install_stack`]; restores the thread's
/// previous region stack on drop.
pub struct InstalledStack {
    saved: Vec<String>,
}

impl Drop for InstalledStack {
    fn drop(&mut self) {
        let saved = std::mem::take(&mut self.saved);
        REGION_STACK.with(|s| *s.borrow_mut() = saved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler table is process-global, so exercise everything from one
    // test to avoid cross-test interference under the parallel test runner.
    #[test]
    fn regions_nest_record_and_report() {
        Profiler::reset();
        {
            let _outer = Profiler::region("prof_test_step");
            Profiler::record_zones(100);
            {
                let _inner = Profiler::region("hydro");
                Profiler::record_zones(40);
                Profiler::record_device_us(12.5);
                assert_eq!(Profiler::current_path(), "prof_test_step/hydro");
            }
            {
                let _inner = Profiler::region("hydro");
                Profiler::record_zones(2);
            }
            {
                let _io = Profiler::region("io/checkpoint");
                Profiler::record_bytes(1_000_000);
            }
            {
                let _b = Profiler::region("burn");
                Profiler::record_retries(3);
                Profiler::record_retries(0); // no-op
                Profiler::record_ns("solve[dense]", 1500);
                Profiler::record_ns("solve[dense]", 500);
            }
        }
        let outer = Profiler::get("prof_test_step").expect("outer recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.zones, 100);
        let inner = Profiler::get("prof_test_step/hydro").expect("inner recorded");
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.zones, 42);
        assert!((inner.device_us - 12.5).abs() < 1e-12);
        assert!(outer.wall_ns >= inner.wall_ns);

        let io = Profiler::get("prof_test_step/io/checkpoint").expect("io recorded");
        assert_eq!(io.bytes, 1_000_000);

        let burn = Profiler::get("prof_test_step/burn").expect("burn recorded");
        assert_eq!(burn.retries, 3);

        let solve = Profiler::get("prof_test_step/burn/solve[dense]").expect("solve recorded");
        assert_eq!(solve.calls, 2);
        assert_eq!(solve.wall_ns, 2000);

        let report = Profiler::report();
        assert!(report.contains("prof_test_step/hydro"));
        assert!(report.contains("retries"));
        assert!(report.contains("pool:"));

        // report_json shares the same accumulation pass: same rows, same
        // deterministic tie-sorted order, machine-readable.
        let json = Profiler::report_json();
        assert!(json.contains("\"path\": \"prof_test_step/hydro\""));
        assert!(json.contains("\"zones\": 42"));
        assert!(json.contains("\"total_ns\""));
        assert!(json.contains("\"pool\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let (rows, _) = Profiler::report_rows();
        let paths: Vec<&str> = rows.iter().map(|(p, _)| p.as_str()).collect();
        let mut pos = 0;
        for p in &paths {
            let at = json
                .find(&format!("\"path\": \"{p}\""))
                .expect("row in json");
            assert!(at >= pos, "json row order must match report order");
            pos = at;
        }

        // install_stack: a foreign stack attributes records, then restores.
        {
            let _g = Profiler::install_stack(vec![
                "prof_test_step".to_string(),
                "installed".to_string(),
            ]);
            assert_eq!(Profiler::current_path(), "prof_test_step/installed");
            Profiler::record_zones(5);
        }
        assert_eq!(Profiler::current_path(), "(top)");
        assert_eq!(Profiler::get("prof_test_step/installed").unwrap().zones, 5);

        let dev = crate::device::SimDevice::new(crate::device::DeviceConfig::v100());
        dev.d2h_copy(2_000_000);
        let dev_report = Profiler::report_with_device(&dev);
        assert!(dev_report.contains("1 D2H copies"));
        assert!(dev_report.contains("2.00 MB"));

        // Zones recorded with no open region land in "(top)".
        Profiler::record_zones(7);
        assert_eq!(Profiler::get("(top)").unwrap().zones, 7);

        Profiler::reset();
        assert!(Profiler::get("prof_test_step").is_none());
    }
}
