//! Property-based tests for the index algebra, execution spaces, and
//! arenas.

use exastro_parallel::{
    tiles_of, Arena, ExecSpace, IndexBox, IntVect, MallocArena, PoolArena, TiledExec,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

fn arb_intvect(range: std::ops::Range<i32>) -> impl Strategy<Value = IntVect> {
    (range.clone(), range.clone(), range).prop_map(|(i, j, k)| IntVect::new(i, j, k))
}

fn arb_box() -> impl Strategy<Value = IndexBox> {
    (arb_intvect(-20..20), arb_intvect(1..16))
        .prop_map(|(lo, size)| IndexBox::new(lo, lo + size - IntVect::unit()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intersection_is_commutative_and_contained(a in arb_box(), b in arb_box()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if !ab.is_empty() {
            prop_assert!(a.contains_box(&ab));
            prop_assert!(b.contains_box(&ab));
        }
    }

    #[test]
    fn grow_then_shrink_roundtrips(bx in arb_box(), n in 0i32..5) {
        prop_assert_eq!(bx.grow(n).grow(-n), bx);
    }

    #[test]
    fn refine_coarsen_roundtrips(bx in arb_box(), r in 2i32..5) {
        prop_assert_eq!(bx.refine(r).coarsen(r), bx);
        prop_assert_eq!(bx.refine(r).num_zones(), bx.num_zones() * (r as i64).pow(3));
    }

    #[test]
    fn coarsen_covers_original(bx in arb_box(), r in 2i32..5) {
        // Every zone of bx maps into its coarsened box.
        let c = bx.coarsen(r);
        for iv in bx.iter().step_by(7) {
            prop_assert!(c.contains(iv.coarsen(IntVect::splat(r))));
        }
    }

    #[test]
    fn difference_partitions_exactly(a in arb_box(), b in arb_box()) {
        let parts = a.difference(&b);
        let total: i64 = parts.iter().map(|p| p.num_zones()).sum();
        prop_assert_eq!(total, a.num_zones() - a.intersection(&b).num_zones());
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(!p.intersects(&b));
            prop_assert!(a.contains_box(p));
            for q in &parts[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn linear_index_is_a_bijection(bx in arb_box()) {
        let n = bx.num_zones() as usize;
        let mut seen = vec![false; n];
        for iv in bx.iter() {
            let li = bx.linear_index(iv);
            prop_assert!(li < n);
            prop_assert!(!seen[li]);
            seen[li] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tiles_partition_any_box(bx in arb_box(), t in arb_intvect(1..8)) {
        let tiles = tiles_of(bx, t);
        let total: i64 = tiles.iter().map(|x| x.num_zones()).sum();
        prop_assert_eq!(total, bx.num_zones());
        for (i, a) in tiles.iter().enumerate() {
            prop_assert!(bx.contains_box(a));
            for b in &tiles[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn reductions_match_serial_reference(bx in arb_box(), nthreads in 1usize..5) {
        let f = |i: i32, j: i32, k: i32| (i * 3 - j + 7 * k) as f64;
        let serial = ExecSpace::Serial.par_reduce_sum(bx, f);
        let tiled = ExecSpace::Tiled(TiledExec {
            nthreads,
            tile_size: IntVect::new(4, 4, 4),
        })
        .par_reduce_sum(bx, f);
        prop_assert!((serial - tiled).abs() < 1e-9 * serial.abs().max(1.0));
    }

    #[test]
    fn pool_allocations_never_alias(sizes in prop::collection::vec(1usize..4096, 1..20)) {
        let pool = PoolArena::new(None);
        let mut bufs = Vec::new();
        for (n, &len) in sizes.iter().enumerate() {
            let mut b = pool.alloc(len);
            b[0] = n as f64;
            if b.len() > 1 {
                let last = b.len() - 1;
                b[last] = -(n as f64);
            }
            bufs.push(b);
        }
        for (n, b) in bufs.iter().enumerate() {
            prop_assert_eq!(b[0], n as f64);
        }
    }

    #[test]
    fn pool_and_malloc_deliver_zeroed_buffers(
        sizes in prop::collection::vec(1usize..2048, 1..12),
    ) {
        let pool = PoolArena::new(None);
        let malloc = MallocArena::new(None);
        for &len in &sizes {
            {
                let mut a = pool.alloc(len);
                a.iter_mut().for_each(|v| *v = 1.25);
            } // recycle dirty
            let b = pool.alloc(len);
            prop_assert!(b.iter().all(|&v| v == 0.0));
            let c = malloc.alloc(len);
            prop_assert!(c.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn pool_reuse_is_bounded_by_live_set(
        rounds in 1usize..20,
        len in 64usize..512,
    ) {
        // Allocating and dropping one buffer per round must allocate at
        // most once from the device (steady state = pure recycling).
        let pool = PoolArena::new(None);
        for _ in 0..rounds {
            let _b = pool.alloc(len);
        }
        let s = pool.stats();
        prop_assert_eq!(s.device_allocs, 1);
        prop_assert_eq!(s.pool_hits, rounds as u64 - 1);
    }

    // ------ adversarial shapes through the persistent worker pool ------

    #[test]
    fn tiled_pool_visits_every_zone_once_adversarial(
        lo in arb_intvect(-9..2),
        size in arb_intvect(1..13),
        tile in arb_intvect(1..15),     // often larger than the box extent
        nthreads in 1usize..32,         // often more threads than tiles
    ) {
        let bx = IndexBox::new(lo, lo + size - IntVect::unit());
        let ex = ExecSpace::Tiled(TiledExec { nthreads, tile_size: tile });
        let n = bx.num_zones() as usize;
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        ex.par_for(bx, |i, j, k| {
            let li = bx.linear_index(IntVect::new(i, j, k));
            counts[li].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn one_zone_tiles_still_cover(
        lo in arb_intvect(-6..0),
        size in arb_intvect(1..9),
        nthreads in 1usize..17,
    ) {
        // Degenerate 1-zone tiles: one task per zone, maximal contention on
        // the task counter.
        let bx = IndexBox::new(lo, lo + size - IntVect::unit());
        let ex = ExecSpace::Tiled(TiledExec {
            nthreads,
            tile_size: IntVect::new(1, 1, 1),
        });
        let n = bx.num_zones() as usize;
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        ex.par_for(bx, |i, j, k| {
            let li = bx.linear_index(IntVect::new(i, j, k));
            counts[li].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn tiled_minmax_reductions_are_bitwise_serial(
        lo in arb_intvect(-8..3),
        size in arb_intvect(1..11),
        tile in arb_intvect(1..6),
        nthreads in 2usize..9,
    ) {
        // max/min are associative and commutative over f64 (no rounding), so
        // the pooled tiled backend must agree with Serial bit for bit.
        let bx = IndexBox::new(lo, lo + size - IntVect::unit());
        let f = |i: i32, j: i32, k: i32| ((i * 37 + j * 11 - k * 5) as f64).sin();
        let ex = ExecSpace::Tiled(TiledExec { nthreads, tile_size: tile });
        let smax = ExecSpace::Serial.par_reduce_max(bx, f);
        let smin = ExecSpace::Serial.par_reduce_min(bx, f);
        prop_assert_eq!(ex.par_reduce_max(bx, f).to_bits(), smax.to_bits());
        prop_assert_eq!(ex.par_reduce_min(bx, f).to_bits(), smin.to_bits());
        // And the sum is deterministic across repeated pooled runs.
        let s1 = ex.par_reduce_sum(bx, f);
        let s2 = ex.par_reduce_sum(bx, f);
        prop_assert_eq!(s1.to_bits(), s2.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Task-graph scheduling: any legal execution order must be immaterial.
// ---------------------------------------------------------------------------

mod graph_props {
    use exastro_parallel::{TaskGraph, WorkerPool};
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Mix a task's id with its dependencies' results: any schedule that
    /// respects the edges computes the same table bit-for-bit, and any
    /// schedule that violates one computes something else with high
    /// probability.
    fn run_and_hash<R>(g: &TaskGraph, deps: &[Vec<usize>], run: R) -> Vec<u64>
    where
        R: FnOnce(&TaskGraph, &(dyn Fn(usize) + Sync)),
    {
        let out: Vec<AtomicU64> = (0..g.len()).map(|_| AtomicU64::new(0)).collect();
        let body = |t: usize| {
            let mut h = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
            for &d in &deps[t] {
                h = h
                    .rotate_left(17)
                    .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                    .wrapping_add(out[d].load(Ordering::SeqCst));
            }
            out[t].store(h, Ordering::SeqCst);
        };
        run(g, &body);
        out.into_iter().map(AtomicU64::into_inner).collect()
    }

    /// A random forward-edge DAG plus its dependency lists.
    fn random_dag(n: usize, density: f64, seed: u64) -> (TaskGraph, Vec<Vec<usize>>) {
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add_task();
        }
        let mut deps = vec![Vec::new(); n];
        let mut s = seed;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        for a in 0..n {
            for (b, d) in deps.iter_mut().enumerate().skip(a + 1) {
                if rnd() < density {
                    g.add_edge(a, b);
                    d.push(a);
                }
            }
        }
        (g, deps)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_dags_hash_identically_under_every_scheduler(
            n in 2usize..28,
            density in 0.0f64..0.6,
            seed in 0u64..100_000,
        ) {
            let (g, deps) = random_dag(n, density, seed);
            let serial = run_and_hash(&g, &deps, |g, f| g.run_serial(f).unwrap());
            for order_seed in [1u64, 42, seed ^ 0xABCD] {
                let shuffled =
                    run_and_hash(&g, &deps, |g, f| g.run_seeded(order_seed, f).unwrap());
                prop_assert_eq!(&serial, &shuffled);
            }
            let pooled = run_and_hash(&g, &deps, |g, f| {
                g.run(WorkerPool::global(), 4, f).unwrap();
            });
            prop_assert_eq!(&serial, &pooled);
        }

        #[test]
        fn chains_and_diamonds_hash_identically(
            width in 1usize..6,
            length in 2usize..8,
            seed in 0u64..1000,
        ) {
            // `width` parallel chains of `length` tasks, then a diamond
            // joining their tails: the shapes the hydro step builds.
            let mut g = TaskGraph::new();
            let mut deps: Vec<Vec<usize>> = Vec::new();
            let mut tails = Vec::new();
            for _ in 0..width {
                let mut prev = g.add_task();
                deps.push(Vec::new());
                for _ in 1..length {
                    let t = g.add_task_after(&[prev]);
                    deps.push(vec![prev]);
                    prev = t;
                }
                tails.push(prev);
            }
            let join = g.add_task_after(&tails);
            deps.push(tails.clone());
            let (a, b) = (g.add_task_after(&[join]), g.add_task_after(&[join]));
            deps.push(vec![join]);
            deps.push(vec![join]);
            let _tip = g.add_task_after(&[a, b]);
            deps.push(vec![a, b]);

            let serial = run_and_hash(&g, &deps, |g, f| g.run_serial(f).unwrap());
            let shuffled = run_and_hash(&g, &deps, |g, f| g.run_seeded(seed, f).unwrap());
            prop_assert_eq!(&serial, &shuffled);
            let pooled = run_and_hash(&g, &deps, |g, f| {
                g.run(WorkerPool::global(), 3, f).unwrap();
            });
            prop_assert_eq!(&serial, &pooled);
        }
    }
}
