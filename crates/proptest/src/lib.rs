//! A minimal, dependency-free, offline drop-in for the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real crate cannot be fetched. This shim implements the same surface —
//! [`Strategy`] with `prop_map`, range/tuple/`Just`/`vec`/`select`
//! strategies, the [`proptest!`] macro, and `prop_assert*` — with a
//! deterministic splitmix/xorshift RNG seeded from the test name, so runs
//! are reproducible. It does **not** implement shrinking: a failing case
//! reports the case number and message only.

/// Test-runner types: configuration, RNG, and failure reporting.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A property failure raised by `prop_assert!` and friends.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Create a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG (splitmix64 seeding, xorshift64* stream).
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // splitmix64 finalizer so nearby names diverge.
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            TestRng((h ^ (h >> 31)) | 1)
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`] trait and combinator/primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values for property tests.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(strategy, len)` — vectors with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy that picks one element of a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from empty list");
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly select one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// Module alias so `prop::collection::vec` / `prop::sample::select` resolve
/// after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body; failure aborts the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} != {:?} ({} vs {})",
            lhs,
            rhs,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: both sides equal {:?} ({} vs {})",
            lhs,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for `config.cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(-20i32..20), &mut rng);
            assert!((-20..20).contains(&v));
            let u = Strategy::sample(&(1usize..16), &mut rng);
            assert!((1..16).contains(&u));
            let f = Strategy::sample(&(-3.0f64..3.0), &mut rng);
            assert!((-3.0..3.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuples_and_vecs(
            (a, b) in (0i32..10, 0i32..10),
            v in prop::collection::vec(0u64..5, 1..4),
            s in prop::sample::select(vec![2i32, 4, 8]),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(s == 2 || s == 4 || s == 8);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
