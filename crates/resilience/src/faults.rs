//! Deterministic fault injection for resilience testing.
//!
//! Three failure classes from the acceptance matrix:
//!
//! * **process death** — [`KillSchedule`] tells a driver loop at which
//!   steps to "die" (tests and the restart example model death as an early
//!   return, then re-enter the loop from the last checkpoint);
//! * **data corruption** — [`flip_bit`] and [`truncate_file`] damage a
//!   checkpoint blob on disk the way bit rot and a crashed writer do;
//! * **torn metadata** — [`tear_rename`] reverts a published checkpoint to
//!   the in-flight temp state a crash between write and rename leaves
//!   behind.
//!
//! All injection is deterministic: tests decide exactly what breaks and
//! when, so recovery behaviour is asserted, not sampled.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A deterministic schedule of steps at which a run is killed.
///
/// Each scheduled step kills the run at most once: after
/// [`KillSchedule::should_die`] returns `true` for a step, that step is
/// consumed, so the relaunched run survives it (like a transient node
/// failure rather than a deterministic crash bug).
#[derive(Clone, Debug, Default)]
pub struct KillSchedule {
    pending: Vec<u64>,
    killed: u64,
}

impl KillSchedule {
    /// Kill the run at each step in `steps` (each at most once).
    pub fn at_steps(steps: &[u64]) -> Self {
        let mut pending = steps.to_vec();
        pending.sort_unstable();
        KillSchedule { pending, killed: 0 }
    }

    /// A schedule that never kills.
    pub fn none() -> Self {
        KillSchedule::default()
    }

    /// Should the run die at `step`? Consumes the scheduled kill.
    pub fn should_die(&mut self, step: u64) -> bool {
        if let Some(pos) = self.pending.iter().position(|&s| s == step) {
            self.pending.remove(pos);
            self.killed += 1;
            true
        } else {
            false
        }
    }

    /// Kills delivered so far.
    pub fn kills_delivered(&self) -> u64 {
        self.killed
    }

    /// Kills still pending.
    pub fn kills_pending(&self) -> usize {
        self.pending.len()
    }
}

/// Truncate `path` to `len` bytes (a crashed writer's partial blob).
pub fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()
}

/// Flip bit `bit` (0 = LSB) of the byte at `offset` in `path` — silent
/// single-bit corruption. Errors if `offset` is past EOF.
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> std::io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if offset >= len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("offset {offset} past EOF ({len})"),
        ));
    }
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit & 7);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)?;
    f.sync_all()
}

/// Simulate a crash between checkpoint write and publication: rename the
/// finalized checkpoint directory back to a hidden in-flight name and
/// delete its manifest (the manifest is written last, so an in-flight
/// directory never has one). Returns the torn directory's path.
pub fn tear_rename(checkpoint_dir: &Path) -> std::io::Result<PathBuf> {
    let name = checkpoint_dir
        .file_name()
        .ok_or_else(|| std::io::Error::other("checkpoint path has no name"))?
        .to_string_lossy()
        .into_owned();
    let torn = checkpoint_dir.with_file_name(format!(".tmp-{name}"));
    if torn.exists() {
        fs::remove_dir_all(&torn)?;
    }
    fs::rename(checkpoint_dir, &torn)?;
    let manifest = torn.join(crate::manifest::MANIFEST_NAME);
    if manifest.exists() {
        fs::remove_file(&manifest)?;
    }
    Ok(torn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_schedule_fires_each_step_once() {
        let mut ks = KillSchedule::at_steps(&[3, 7]);
        assert!(!ks.should_die(1));
        assert!(ks.should_die(3));
        assert!(!ks.should_die(3)); // consumed: relaunch survives step 3
        assert!(ks.should_die(7));
        assert_eq!(ks.kills_delivered(), 2);
        assert_eq!(ks.kills_pending(), 0);
        assert!(!KillSchedule::none().should_die(0));
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        let p = std::env::temp_dir().join(format!("exastro_flip_{}", std::process::id()));
        fs::write(&p, vec![0u8; 16]).unwrap();
        flip_bit(&p, 5, 2).unwrap();
        let data = fs::read(&p).unwrap();
        assert_eq!(data[5], 0b100);
        assert!(data.iter().enumerate().all(|(i, &b)| (i == 5) == (b != 0)));
        assert!(flip_bit(&p, 16, 0).is_err());
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn truncate_shortens_file() {
        let p = std::env::temp_dir().join(format!("exastro_trunc_{}", std::process::id()));
        fs::write(&p, vec![9u8; 256]).unwrap();
        truncate_file(&p, 100).unwrap();
        assert_eq!(fs::metadata(&p).unwrap().len(), 100);
        let _ = fs::remove_file(&p);
    }
}
