//! Optimal checkpoint cadence: the Young and Daly approximations.
//!
//! With mean time between failures `M` and per-checkpoint cost `C`, a run
//! that checkpoints every `τ` seconds wastes roughly `C/τ` of its time
//! writing checkpoints and `τ/(2M)` redoing work lost to failures. Young's
//! first-order optimum balances the two:
//!
//! ```text
//! τ_opt = sqrt(2 · M · C)
//! ```
//!
//! Daly's higher-order form adds the correction terms that matter when `C`
//! is not small against `M` — exactly the regime the paper's exascale
//! sizing puts us in, where full-machine MTBF shrinks with node count while
//! checkpoint volume grows with it.

/// Young's optimal checkpoint interval `sqrt(2·mtbf·ckpt_cost)` (same time
/// unit in and out). Returns 0 for non-positive inputs.
pub fn interval(mtbf: f64, ckpt_cost: f64) -> f64 {
    if mtbf <= 0.0 || ckpt_cost <= 0.0 {
        return 0.0;
    }
    (2.0 * mtbf * ckpt_cost).sqrt()
}

/// Daly's higher-order optimal interval:
/// `sqrt(2·C·M) · [1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C` when
/// `C < 2M`, else `M` (checkpointing costs more than the machine survives —
/// any cadence loses; Daly's limit).
pub fn daly_interval(mtbf: f64, ckpt_cost: f64) -> f64 {
    if mtbf <= 0.0 || ckpt_cost <= 0.0 {
        return 0.0;
    }
    if ckpt_cost >= 2.0 * mtbf {
        return mtbf;
    }
    let r = (ckpt_cost / (2.0 * mtbf)).sqrt();
    (2.0 * ckpt_cost * mtbf).sqrt() * (1.0 + r / 3.0 + r * r / 9.0) - ckpt_cost
}

/// First-order expected fraction of wall time wasted at cadence `tau`:
/// `ckpt_cost/tau + tau/(2·mtbf)` (checkpoint overhead + expected rework).
pub fn expected_waste(tau: f64, mtbf: f64, ckpt_cost: f64) -> f64 {
    if tau <= 0.0 || mtbf <= 0.0 {
        return f64::INFINITY;
    }
    ckpt_cost / tau + tau / (2.0 * mtbf)
}

/// What the Young/Daly model needs to know about one job: its footprint on
/// the machine and its failure/step timescales. Everything a driver or the
/// service scheduler already tracks.
#[derive(Clone, Copy, Debug)]
pub struct JobProfile {
    /// Nodes the job occupies (sets both checkpoint bandwidth and the
    /// job's share of machine failures).
    pub nodes: usize,
    /// Bytes one checkpoint of this job writes (e.g.
    /// [`crate::snapshot::Snapshot::payload_bytes`]).
    pub checkpoint_bytes: u64,
    /// Mean time between failures of a *single* node, seconds. The job's
    /// effective MTBF is this divided by `nodes`.
    pub per_node_mtbf_s: f64,
    /// Wall seconds one simulation step costs (used to convert the optimal
    /// interval into a step cadence).
    pub step_wall_s: f64,
}

impl Default for JobProfile {
    fn default() -> Self {
        JobProfile {
            nodes: 1,
            checkpoint_bytes: 0,
            // 10-year per-node MTBF: the exascale sizing used throughout
            // the paper discussion (machine MTBF shrinks as 1/N from here).
            per_node_mtbf_s: 10.0 * 365.0 * 86_400.0,
            step_wall_s: 1.0,
        }
    }
}

/// The Young-optimal checkpoint interval for `job` on `machine`, seconds:
/// `sqrt(2·M·C)` with `M = per_node_mtbf / nodes` and `C` the machine
/// model's cost of writing the job's checkpoint from its nodes. This is the
/// drivers' *default* cadence — an explicitly configured cadence always
/// overrides it. Returns 0 when the job writes no checkpoint bytes.
pub fn suggest_interval(machine: &exastro_machine::Machine, job: &JobProfile) -> f64 {
    let cost_s = machine.checkpoint_write_us(job.checkpoint_bytes, job.nodes.max(1)) * 1e-6;
    let mtbf_s = job.per_node_mtbf_s / job.nodes.max(1) as f64;
    interval(mtbf_s, cost_s)
}

/// [`suggest_interval`] converted to a step cadence (steps between
/// checkpoints), clamped to at least 1. With degenerate inputs (zero-cost
/// checkpoints or non-positive step time) it returns 1: checkpointing every
/// step is the safe fallback when the model has nothing to optimize.
pub fn suggest_cadence_steps(machine: &exastro_machine::Machine, job: &JobProfile) -> u64 {
    let tau = suggest_interval(machine, job);
    if tau <= 0.0 || job.step_wall_s <= 0.0 {
        return 1;
    }
    ((tau / job.step_wall_s).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_closed_form() {
        // MTBF 1 h, checkpoint 50 s → τ = sqrt(2·3600·50) = 600 s.
        assert!((interval(3600.0, 50.0) - 600.0).abs() < 1e-9);
        assert_eq!(interval(0.0, 50.0), 0.0);
        assert_eq!(interval(3600.0, -1.0), 0.0);
    }

    #[test]
    fn young_minimizes_first_order_waste() {
        let (mtbf, cost) = (3600.0, 50.0);
        let tau_opt = interval(mtbf, cost);
        let w_opt = expected_waste(tau_opt, mtbf, cost);
        // Scan a broad grid of cadences: none beats Young's τ.
        let mut tau = 10.0;
        while tau < 20.0 * tau_opt {
            assert!(expected_waste(tau, mtbf, cost) >= w_opt - 1e-12);
            tau *= 1.07;
        }
    }

    #[test]
    fn daly_close_to_young_for_cheap_checkpoints_and_bounded_otherwise() {
        // C ≪ M: Daly ≈ Young.
        let (mtbf, cost) = (86_400.0, 10.0);
        let y = interval(mtbf, cost);
        let d = daly_interval(mtbf, cost);
        assert!((d - y).abs() / y < 0.05);
        // C ≥ 2M: degenerate regime pins to MTBF.
        assert_eq!(daly_interval(100.0, 500.0), 100.0);
        assert_eq!(daly_interval(-1.0, 5.0), 0.0);
    }

    #[test]
    fn suggest_interval_matches_closed_form_optimum() {
        let machine = exastro_machine::Machine::summit();
        let job = JobProfile {
            nodes: 64,
            checkpoint_bytes: 1 << 30,
            per_node_mtbf_s: 10.0 * 365.0 * 86_400.0,
            step_wall_s: 2.0,
        };
        // Closed form: τ = sqrt(2·M·C) with the machine model's own C.
        let c = machine.checkpoint_write_us(job.checkpoint_bytes, job.nodes) * 1e-6;
        let m = job.per_node_mtbf_s / job.nodes as f64;
        let expected = (2.0 * m * c).sqrt();
        let tau = suggest_interval(&machine, &job);
        assert!(
            (tau - expected).abs() < 1e-9 * expected,
            "suggest_interval {tau} != closed form {expected}"
        );
        // And it really is the first-order optimum: no scanned cadence
        // beats it for waste.
        let w_opt = expected_waste(tau, m, c);
        let mut t = tau / 20.0;
        while t < 20.0 * tau {
            assert!(expected_waste(t, m, c) >= w_opt - 1e-12);
            t *= 1.1;
        }
        // Step cadence is the interval divided by the step cost.
        let steps = suggest_cadence_steps(&machine, &job);
        assert_eq!(steps, (tau / job.step_wall_s).round() as u64);
        assert!(steps >= 1);
        // Degenerate job: unknown step cost → checkpoint every step.
        let nop = JobProfile {
            step_wall_s: 0.0,
            ..job
        };
        assert_eq!(suggest_cadence_steps(&machine, &nop), 1);
    }

    #[test]
    fn suggested_cadence_shrinks_as_the_job_grows() {
        // Bigger jobs see more failures (MTBF/N) — the suggested interval
        // must shrink even as checkpoint bandwidth grows with nodes.
        let machine = exastro_machine::Machine::summit();
        let small = JobProfile {
            nodes: 8,
            checkpoint_bytes: 1 << 28,
            ..Default::default()
        };
        let big = JobProfile {
            nodes: 4096,
            checkpoint_bytes: 1 << 28,
            ..Default::default()
        };
        assert!(suggest_interval(&machine, &big) < suggest_interval(&machine, &small));
    }

    #[test]
    fn waste_grows_with_node_count_scenario() {
        // Exascale sizing: per-node MTBF 10 yr → machine MTBF 10yr/N.
        // Optimal cadence must shrink as the machine grows.
        let per_node_mtbf = 10.0 * 365.0 * 86_400.0;
        let cost = 120.0;
        let tau_small = interval(per_node_mtbf / 100.0, cost);
        let tau_big = interval(per_node_mtbf / 10_000.0, cost);
        assert!(tau_big < tau_small);
    }
}
