//! Optimal checkpoint cadence: the Young and Daly approximations.
//!
//! With mean time between failures `M` and per-checkpoint cost `C`, a run
//! that checkpoints every `τ` seconds wastes roughly `C/τ` of its time
//! writing checkpoints and `τ/(2M)` redoing work lost to failures. Young's
//! first-order optimum balances the two:
//!
//! ```text
//! τ_opt = sqrt(2 · M · C)
//! ```
//!
//! Daly's higher-order form adds the correction terms that matter when `C`
//! is not small against `M` — exactly the regime the paper's exascale
//! sizing puts us in, where full-machine MTBF shrinks with node count while
//! checkpoint volume grows with it.

/// Young's optimal checkpoint interval `sqrt(2·mtbf·ckpt_cost)` (same time
/// unit in and out). Returns 0 for non-positive inputs.
pub fn interval(mtbf: f64, ckpt_cost: f64) -> f64 {
    if mtbf <= 0.0 || ckpt_cost <= 0.0 {
        return 0.0;
    }
    (2.0 * mtbf * ckpt_cost).sqrt()
}

/// Daly's higher-order optimal interval:
/// `sqrt(2·C·M) · [1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C` when
/// `C < 2M`, else `M` (checkpointing costs more than the machine survives —
/// any cadence loses; Daly's limit).
pub fn daly_interval(mtbf: f64, ckpt_cost: f64) -> f64 {
    if mtbf <= 0.0 || ckpt_cost <= 0.0 {
        return 0.0;
    }
    if ckpt_cost >= 2.0 * mtbf {
        return mtbf;
    }
    let r = (ckpt_cost / (2.0 * mtbf)).sqrt();
    (2.0 * ckpt_cost * mtbf).sqrt() * (1.0 + r / 3.0 + r * r / 9.0) - ckpt_cost
}

/// First-order expected fraction of wall time wasted at cadence `tau`:
/// `ckpt_cost/tau + tau/(2·mtbf)` (checkpoint overhead + expected rework).
pub fn expected_waste(tau: f64, mtbf: f64, ckpt_cost: f64) -> f64 {
    if tau <= 0.0 || mtbf <= 0.0 {
        return f64::INFINITY;
    }
    ckpt_cost / tau + tau / (2.0 * mtbf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_closed_form() {
        // MTBF 1 h, checkpoint 50 s → τ = sqrt(2·3600·50) = 600 s.
        assert!((interval(3600.0, 50.0) - 600.0).abs() < 1e-9);
        assert_eq!(interval(0.0, 50.0), 0.0);
        assert_eq!(interval(3600.0, -1.0), 0.0);
    }

    #[test]
    fn young_minimizes_first_order_waste() {
        let (mtbf, cost) = (3600.0, 50.0);
        let tau_opt = interval(mtbf, cost);
        let w_opt = expected_waste(tau_opt, mtbf, cost);
        // Scan a broad grid of cadences: none beats Young's τ.
        let mut tau = 10.0;
        while tau < 20.0 * tau_opt {
            assert!(expected_waste(tau, mtbf, cost) >= w_opt - 1e-12);
            tau *= 1.07;
        }
    }

    #[test]
    fn daly_close_to_young_for_cheap_checkpoints_and_bounded_otherwise() {
        // C ≪ M: Daly ≈ Young.
        let (mtbf, cost) = (86_400.0, 10.0);
        let y = interval(mtbf, cost);
        let d = daly_interval(mtbf, cost);
        assert!((d - y).abs() / y < 0.05);
        // C ≥ 2M: degenerate regime pins to MTBF.
        assert_eq!(daly_interval(100.0, 500.0), 100.0);
        assert_eq!(daly_interval(-1.0, 5.0), 0.0);
    }

    #[test]
    fn waste_grows_with_node_count_scenario() {
        // Exascale sizing: per-node MTBF 10 yr → machine MTBF 10yr/N.
        // Optimal cadence must shrink as the machine grows.
        let per_node_mtbf = 10.0 * 365.0 * 86_400.0;
        let cost = 120.0;
        let tau_small = interval(per_node_mtbf / 100.0, cost);
        let tau_big = interval(per_node_mtbf / 10_000.0, cost);
        assert!(tau_big < tau_small);
    }
}
