//! # exastro-resilience
//!
//! Checkpoint/restart for the `exastro` suite. The paper's GPU-resident
//! design makes checkpointing one of only two host↔device crossings
//! ("writing a checkpoint involves making a copy to CPU memory", §III); at
//! exascale, the machine's mean time between failures forces that crossing
//! into the hot loop, so the checkpoint path has to be *durable* (atomic
//! directory writes), *trustworthy* (per-blob integrity checksums), and
//! *priced* (D2H bytes through the simulated device, an α–β filesystem
//! term in the machine model, Young/Daly cadence policy).
//!
//! * [`snapshot`] — the multi-level [`Snapshot`] of a run: per-level
//!   geometry + state, step counters, auxiliary 1-D arrays (e.g. the
//!   MAESTROeX base state);
//! * [`manifest`] — CRC32 integrity manifests over every file of a
//!   checkpoint directory;
//! * [`manager`] — [`CheckpointManager`]: atomic temp-dir+fsync+rename
//!   writes, keep-last-K retention, corruption detection with fallback to
//!   the last good checkpoint, bounded-backoff write retries, and cost
//!   accounting (D2H through [`exastro_parallel::SimDevice`], bytes into
//!   the `io/checkpoint` profiler region);
//! * [`faults`] — deterministic fault injection: kill schedules, blob
//!   truncation, bit flips, torn renames, and injected write failures;
//! * [`interval`] — the Young/Daly optimal checkpoint interval;
//! * [`recovery`] — the shared step-rejection policy knobs and the
//!   emergency-checkpoint writer used by both drivers when a step is
//!   unrecoverable;
//! * [`stepper`] — the driver-agnostic [`Stepper`] contract: transactional
//!   step semantics any host (the service, soak harnesses) can drive
//!   without knowing which physics is behind it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod interval;
pub mod manager;
pub mod manifest;
pub mod recovery;
pub mod snapshot;
pub mod stepper;

pub use faults::{flip_bit, tear_rename, truncate_file, KillSchedule};
pub use interval::{
    daly_interval, expected_waste, interval, suggest_cadence_steps, suggest_interval, JobProfile,
};
pub use manager::{CheckpointManager, Error, ManagerStats, RetryPolicy};
pub use manifest::{crc32, Manifest};
pub use recovery::{write_emergency, RecoveryOptions};
pub use snapshot::{digest_multifab, Clock, LevelSnapshot, Snapshot};
pub use stepper::{StepFailure, StepOutcome, Stepper};
