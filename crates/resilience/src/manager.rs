//! The checkpoint manager: durable, integrity-checked, self-pruning
//! checkpoint directories with restart and failure fallback.
//!
//! Write protocol (crash-safe at every point):
//!
//! 1. serialize the snapshot into a hidden temp directory
//!    (`.tmp-chkNNNNNNNN`) — one sub-directory per AMR level, a `Meta`
//!    file for the counters, `Aux_*.bin` blobs for auxiliary arrays;
//! 2. write the CRC32 [`Manifest`] **last** — a checkpoint without a
//!    manifest is by definition incomplete;
//! 3. fsync the files and the directories;
//! 4. atomically `rename` the temp directory to `chkNNNNNNNN` and fsync
//!    the root.
//!
//! A crash before (4) leaves only a `.tmp-*` directory, which readers
//! ignore; a torn or bit-rotted checkpoint fails manifest verification and
//! [`CheckpointManager::latest_good`] falls back to the previous one.
//! Writes retry with bounded exponential backoff (transient filesystem
//! failures are injectable through [`CheckpointManager::inject_write_faults`]).
//!
//! Cost accounting: the payload is charged as one D2H copy on the attached
//! [`SimDevice`] (this is the §III host↔device crossing) and the whole
//! write/read runs under the `io/checkpoint` profiler region with its byte
//! count recorded.

use crate::manifest::{Manifest, MANIFEST_NAME};
use crate::snapshot::{Clock, LevelSnapshot, Snapshot};
use exastro_amr::io::{read_checkpoint, write_checkpoint, IoError};
use exastro_amr::Real;
use exastro_parallel::{Profiler, SimDevice};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Errors from checkpoint management.
#[derive(Debug)]
pub enum Error {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed checkpoint contents.
    Format(String),
    /// Integrity verification failed (manifest mismatch).
    Corrupt(String),
    /// No (intact) checkpoint exists to restore from.
    NoCheckpoint,
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<IoError> for Error {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Io(e) => Error::Io(e),
            IoError::Format(m) => Error::Format(m),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Error::Format(m) => write!(f, "checkpoint format error: {m}"),
            Error::Corrupt(m) => write!(f, "checkpoint integrity error: {m}"),
            Error::NoCheckpoint => write!(f, "no intact checkpoint available"),
        }
    }
}

impl std::error::Error for Error {}

/// Bounded-backoff retry policy for checkpoint writes.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Backoff before retry k is `base_backoff × 2^(k-1)`, capped at
    /// `max_backoff`.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        }
    }
}

/// Aggregate manager statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Checkpoints successfully written.
    pub writes: u64,
    /// Write attempts that failed and were retried (or gave up).
    pub write_failures: u64,
    /// Payload bytes written (sum over successful checkpoints).
    pub bytes_written: u64,
    /// D2H copies charged to the attached device.
    pub d2h_copies: u64,
    /// Checkpoints found corrupt during scans/restores.
    pub corrupt_detected: u64,
    /// Snapshots restored.
    pub restores: u64,
    /// Checkpoints removed by retention pruning.
    pub pruned: u64,
}

type WriteFaultFn = Box<dyn FnMut(u64, u32) -> Option<std::io::Error> + Send>;

/// Manages a directory of rotating, integrity-checked checkpoints.
pub struct CheckpointManager {
    root: PathBuf,
    keep: usize,
    retry: RetryPolicy,
    device: Option<Arc<SimDevice>>,
    write_faults: Mutex<Option<WriteFaultFn>>,
    stats: Mutex<ManagerStats>,
}

const META_MAGIC: &str = "exastro-snapshot-v1";

impl CheckpointManager {
    /// Create a manager rooted at `root` (created if absent). Defaults:
    /// keep the last 2 checkpoints, 3 write attempts.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, Error> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CheckpointManager {
            root,
            keep: 2,
            retry: RetryPolicy::default(),
            device: None,
            write_faults: Mutex::new(None),
            stats: Mutex::new(ManagerStats::default()),
        })
    }

    /// Retain only the newest `k` checkpoints (k ≥ 1).
    pub fn keep_last(mut self, k: usize) -> Self {
        self.keep = k.max(1);
        self
    }

    /// Set the write retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Charge checkpoint D2H traffic to `device` (the §III host copy).
    pub fn with_device(mut self, device: Arc<SimDevice>) -> Self {
        self.device = Some(device);
        self
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ManagerStats {
        *self.stats.lock().unwrap()
    }

    /// Inject deterministic write faults: `f(step, attempt)` returning
    /// `Some(err)` makes that write attempt fail before touching disk.
    /// Pass-through (`None`) attempts proceed normally.
    pub fn inject_write_faults(
        &self,
        f: impl FnMut(u64, u32) -> Option<std::io::Error> + Send + 'static,
    ) {
        *self.write_faults.lock().unwrap() = Some(Box::new(f));
    }

    /// Directory name of the checkpoint for `step`.
    pub fn checkpoint_name(step: u64) -> String {
        format!("chk{step:08}")
    }

    /// All complete-looking checkpoints (final-named directories), as
    /// `(step, path)` sorted ascending by step. Integrity is *not* checked
    /// here; use [`CheckpointManager::latest_good`] for that.
    pub fn checkpoints(&self) -> Vec<(u64, PathBuf)> {
        let mut out = Vec::new();
        if let Ok(rd) = fs::read_dir(&self.root) {
            for entry in rd.flatten() {
                let p = entry.path();
                if !p.is_dir() {
                    continue;
                }
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(step) = name.strip_prefix("chk").and_then(|s| s.parse::<u64>().ok()) {
                    out.push((step, p));
                }
            }
        }
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Verify the integrity of the checkpoint at `dir` via its manifest.
    pub fn verify(dir: &Path) -> Result<(), Error> {
        let m = Manifest::load(dir).map_err(Error::Corrupt)?;
        m.verify(dir).map_err(Error::Corrupt)
    }

    /// The newest checkpoint that passes integrity verification, skipping
    /// (and counting) corrupt ones.
    pub fn latest_good(&self) -> Option<(u64, PathBuf)> {
        for (step, path) in self.checkpoints().into_iter().rev() {
            match Self::verify(&path) {
                Ok(()) => return Some((step, path)),
                Err(_) => {
                    self.stats.lock().unwrap().corrupt_detected += 1;
                }
            }
        }
        None
    }

    /// Write `snap` durably, retrying per the [`RetryPolicy`] with bounded
    /// exponential backoff. Returns the final checkpoint path.
    pub fn write(&self, snap: &Snapshot) -> Result<PathBuf, Error> {
        let _r = Profiler::region("io/checkpoint");
        let bytes = snap.payload_bytes();
        // The one D2H crossing: checkpointing copies device-resident state
        // to host memory before it can be written (§III). Charged once per
        // checkpoint, not per retry — the host copy survives write retries.
        if let Some(dev) = &self.device {
            let us = dev.d2h_copy(bytes);
            Profiler::record_device_us(us);
            self.stats.lock().unwrap().d2h_copies += 1;
        }
        let mut backoff = self.retry.base_backoff;
        let mut last_err: Error = Error::NoCheckpoint;
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.retry.max_backoff);
            }
            let injected = {
                let mut g = self.write_faults.lock().unwrap();
                g.as_mut().and_then(|f| f(snap.clock.step, attempt))
            };
            let result = match injected {
                Some(e) => Err(Error::Io(e)),
                None => self.write_once(snap),
            };
            match result {
                Ok(path) => {
                    let mut st = self.stats.lock().unwrap();
                    st.writes += 1;
                    st.bytes_written += bytes;
                    drop(st);
                    Profiler::record_bytes(bytes);
                    // Process-wide counter; StepRecorder turns it into the
                    // per-step `checkpoint_bytes` delta.
                    exastro_telemetry::counter_add("checkpoint.bytes", bytes);
                    self.prune();
                    return Ok(path);
                }
                Err(e) => {
                    self.stats.lock().unwrap().write_failures += 1;
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    fn write_once(&self, snap: &Snapshot) -> Result<PathBuf, Error> {
        let name = Self::checkpoint_name(snap.clock.step);
        let tmp = self.root.join(format!(".tmp-{name}"));
        let fin = self.root.join(&name);
        if tmp.exists() {
            fs::remove_dir_all(&tmp)?;
        }
        fs::create_dir_all(&tmp)?;
        let var_refs: Vec<&str> = snap.variables.iter().map(String::as_str).collect();
        for (l, lev) in snap.levels.iter().enumerate() {
            write_checkpoint(
                &tmp.join(format!("Level_{l:02}")),
                &lev.state,
                &lev.geom,
                snap.clock.time,
                &var_refs,
            )?;
        }
        for (aux_name, v) in &snap.aux {
            debug_assert!(aux_name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_'));
            let mut f = fs::File::create(tmp.join(format!("Aux_{aux_name}.bin")))?;
            for x in v {
                f.write_all(&x.to_le_bytes())?;
            }
            f.sync_all()?;
        }
        self.write_meta(&tmp, snap)?;
        // The manifest is written last: its presence certifies completeness.
        let manifest = Manifest::over_dir(&tmp).map_err(Error::Io)?;
        let mut mf = fs::File::create(tmp.join(MANIFEST_NAME))?;
        mf.write_all(manifest.to_text().as_bytes())?;
        mf.sync_all()?;
        sync_dir(&tmp);
        if fin.exists() {
            fs::remove_dir_all(&fin)?;
        }
        fs::rename(&tmp, &fin)?;
        sync_dir(&self.root);
        Ok(fin)
    }

    fn write_meta(&self, dir: &Path, snap: &Snapshot) -> Result<(), Error> {
        let mut f = fs::File::create(dir.join("Meta"))?;
        writeln!(f, "{META_MAGIC}")?;
        writeln!(f, "step {}", snap.clock.step)?;
        // Bit-pattern hex alongside the decimal: the decimal is for humans,
        // the bits are what restore parses (exact by construction).
        writeln!(
            f,
            "time {:016x} {:e}",
            snap.clock.time.to_bits(),
            snap.clock.time
        )?;
        writeln!(f, "dt {:016x} {:e}", snap.clock.dt.to_bits(), snap.clock.dt)?;
        writeln!(f, "nlevels {}", snap.levels.len())?;
        let ratios: Vec<String> = snap
            .levels
            .iter()
            .map(|l| l.ratio_to_coarser.to_string())
            .collect();
        writeln!(f, "ratios {}", ratios.join(" "))?;
        writeln!(f, "variables {}", snap.variables.join(" "))?;
        for (aux_name, v) in &snap.aux {
            writeln!(f, "aux {aux_name} {}", v.len())?;
        }
        f.sync_all()?;
        Ok(())
    }

    /// Restore the snapshot stored at `dir`, verifying integrity first.
    pub fn restore(&self, dir: &Path) -> Result<Snapshot, Error> {
        let _r = Profiler::region("io/checkpoint");
        Self::verify(dir)?;
        let snap = read_snapshot_dir(dir)?;
        Profiler::record_bytes(snap.payload_bytes());
        self.stats.lock().unwrap().restores += 1;
        Ok(snap)
    }

    /// Resume from the newest intact checkpoint, falling back past corrupt
    /// ones. [`Error::NoCheckpoint`] if none survives.
    pub fn resume(&self) -> Result<Snapshot, Error> {
        let (_, path) = self.latest_good().ok_or(Error::NoCheckpoint)?;
        self.restore(&path)
    }

    /// Drop all but the newest `keep` checkpoints.
    fn prune(&self) {
        let cks = self.checkpoints();
        if cks.len() <= self.keep {
            return;
        }
        let n_drop = cks.len() - self.keep;
        for (_, path) in cks.into_iter().take(n_drop) {
            if fs::remove_dir_all(&path).is_ok() {
                self.stats.lock().unwrap().pruned += 1;
            }
        }
    }
}

/// Best-effort directory fsync (Linux allows fsync on a read-only dir fd;
/// elsewhere this is a no-op).
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

fn read_snapshot_dir(dir: &Path) -> Result<Snapshot, Error> {
    let meta = fs::read_to_string(dir.join("Meta"))?;
    let mut lines = meta.lines();
    let mut next = || -> Result<&str, Error> {
        lines
            .next()
            .ok_or_else(|| Error::Format("truncated Meta".into()))
    };
    if next()? != META_MAGIC {
        return Err(Error::Format("bad Meta magic".into()));
    }
    let field = |line: &str, key: &str| -> Result<String, Error> {
        line.strip_prefix(key)
            .map(|s| s.trim().to_string())
            .ok_or_else(|| Error::Format(format!("expected '{key}' in Meta, got '{line}'")))
    };
    let step: u64 = field(next()?, "step")?
        .parse()
        .map_err(|e| Error::Format(format!("bad step: {e}")))?;
    let parse_bits = |s: String, what: &str| -> Result<Real, Error> {
        let hex = s
            .split_whitespace()
            .next()
            .ok_or_else(|| Error::Format(format!("bad {what}")))?;
        u64::from_str_radix(hex, 16)
            .map(Real::from_bits)
            .map_err(|e| Error::Format(format!("bad {what}: {e}")))
    };
    let time = parse_bits(field(next()?, "time")?, "time")?;
    let dt = parse_bits(field(next()?, "dt")?, "dt")?;
    let nlevels: usize = field(next()?, "nlevels")?
        .parse()
        .map_err(|e| Error::Format(format!("bad nlevels: {e}")))?;
    let ratios: Vec<i32> = field(next()?, "ratios")?
        .split_whitespace()
        .map(|t| t.parse::<i32>())
        .collect::<Result<_, _>>()
        .map_err(|e| Error::Format(format!("bad ratios: {e}")))?;
    if ratios.len() != nlevels {
        return Err(Error::Format(format!(
            "nlevels {nlevels} but {} ratios",
            ratios.len()
        )));
    }
    let variables: Vec<String> = field(next()?, "variables")?
        .split_whitespace()
        .map(String::from)
        .collect();
    let mut aux = Vec::new();
    for line in lines {
        let spec = field(line.to_string().as_str(), "aux")?;
        let mut it = spec.split_whitespace();
        let aux_name = it
            .next()
            .ok_or_else(|| Error::Format("bad aux line".into()))?
            .to_string();
        let len: usize = it
            .next()
            .ok_or_else(|| Error::Format("bad aux line".into()))?
            .parse()
            .map_err(|e| Error::Format(format!("bad aux len: {e}")))?;
        let mut f = fs::File::open(dir.join(format!("Aux_{aux_name}.bin")))?;
        let mut v = Vec::with_capacity(len);
        let mut buf = [0u8; 8];
        for _ in 0..len {
            f.read_exact(&mut buf)?;
            v.push(Real::from_le_bytes(buf));
        }
        aux.push((aux_name, v));
    }
    let mut levels = Vec::with_capacity(nlevels);
    for (l, ratio) in ratios.iter().enumerate().take(nlevels) {
        let ck = read_checkpoint(&dir.join(format!("Level_{l:02}")))?;
        levels.push(LevelSnapshot {
            geom: ck.geom,
            state: ck.state,
            ratio_to_coarser: *ratio,
        });
    }
    Ok(Snapshot {
        levels,
        clock: Clock { step, time, dt },
        variables,
        aux,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults;
    use exastro_amr::{BoxArray, Geometry, MultiFab};

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("exastro_mgr_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn snap_at(step: u64, seed: Real) -> Snapshot {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mut mf = MultiFab::local(ba, 2, 1);
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                for c in 0..2 {
                    let v = seed + (iv.x() * 3 + iv.y() * 5 + iv.z() * 7 + c as i32) as Real * 0.01;
                    mf.fab_mut(i).set(iv, c, v);
                }
            }
        }
        let mut s = Snapshot::single_level(
            geom,
            mf,
            Clock {
                step,
                time: step as Real * 0.125,
                dt: 0.125,
            },
            vec!["a".into(), "b".into()],
        );
        s.aux
            .push(("rho0".into(), vec![seed, seed * 2.0, seed * 3.0]));
        s
    }

    #[test]
    fn write_restore_roundtrip_is_exact() {
        let root = tmp_root("roundtrip");
        let mgr = CheckpointManager::new(&root).unwrap();
        let snap = snap_at(7, 1.5);
        let path = mgr.write(&snap).unwrap();
        assert!(path.ends_with("chk00000007"));
        let back = mgr.restore(&path).unwrap();
        assert_eq!(back.digest(), snap.digest());
        assert_eq!(back.clock, snap.clock);
        assert_eq!(back.variables, snap.variables);
        assert_eq!(back.aux_array("rho0").unwrap(), &[1.5, 3.0, 4.5]);
        let st = mgr.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.restores, 1);
        assert_eq!(st.bytes_written, snap.payload_bytes());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn retention_keeps_last_k() {
        let root = tmp_root("retention");
        let mgr = CheckpointManager::new(&root).unwrap().keep_last(2);
        for step in [1, 2, 3, 4] {
            mgr.write(&snap_at(step, step as Real)).unwrap();
        }
        let cks = mgr.checkpoints();
        let steps: Vec<u64> = cks.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![3, 4]);
        assert_eq!(mgr.stats().pruned, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let root = tmp_root("fallback");
        let mgr = CheckpointManager::new(&root).unwrap().keep_last(3);
        mgr.write(&snap_at(2, 2.0)).unwrap();
        let newest = mgr.write(&snap_at(4, 4.0)).unwrap();
        // Bit-flip one payload blob in the newest checkpoint.
        faults::flip_bit(&newest.join("Level_00/fab_00000.bin"), 64, 3).unwrap();
        let (step, _) = mgr.latest_good().unwrap();
        assert_eq!(step, 2);
        let snap = mgr.resume().unwrap();
        assert_eq!(snap.clock.step, 2);
        assert!(mgr.stats().corrupt_detected >= 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_blob_is_detected() {
        let root = tmp_root("trunc");
        let mgr = CheckpointManager::new(&root).unwrap();
        let p = mgr.write(&snap_at(1, 1.0)).unwrap();
        faults::truncate_file(&p.join("Level_00/fab_00000.bin"), 100).unwrap();
        assert!(matches!(
            CheckpointManager::verify(&p),
            Err(Error::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_rename_leftover_is_invisible_and_manifestless_dir_is_corrupt() {
        let root = tmp_root("torn");
        let mgr = CheckpointManager::new(&root).unwrap().keep_last(3);
        mgr.write(&snap_at(3, 3.0)).unwrap();
        let newest = mgr.write(&snap_at(6, 6.0)).unwrap();
        // Simulate a crash mid-write: the checkpoint reverts to a temp-named
        // directory with no manifest (what a torn rename leaves behind).
        let torn = faults::tear_rename(&newest).unwrap();
        assert!(torn.file_name().unwrap().to_string_lossy().starts_with('.'));
        // Scans ignore the temp leftover entirely.
        assert_eq!(mgr.checkpoints().len(), 1);
        let (step, _) = mgr.latest_good().unwrap();
        assert_eq!(step, 3);
        // A final-named dir with a deleted manifest is detected as corrupt.
        let p6 = root.join(CheckpointManager::checkpoint_name(6));
        fs::rename(&torn, &p6).unwrap();
        assert!(matches!(
            CheckpointManager::verify(&p6),
            Err(Error::Corrupt(_))
        ));
        assert_eq!(mgr.latest_good().unwrap().0, 3);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn write_faults_retry_with_backoff_then_succeed() {
        let root = tmp_root("retry");
        let mgr = CheckpointManager::new(&root)
            .unwrap()
            .with_retry(RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            });
        // Fail the first two attempts of every write.
        mgr.inject_write_faults(|_step, attempt| {
            (attempt < 2).then(|| std::io::Error::other("injected ENOSPC"))
        });
        let p = mgr.write(&snap_at(5, 5.0)).unwrap();
        CheckpointManager::verify(&p).unwrap();
        let st = mgr.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.write_failures, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        let root = tmp_root("giveup");
        let mgr = CheckpointManager::new(&root)
            .unwrap()
            .with_retry(RetryPolicy {
                attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            });
        mgr.inject_write_faults(|_, _| Some(std::io::Error::other("disk on fire")));
        assert!(matches!(mgr.write(&snap_at(9, 9.0)), Err(Error::Io(_))));
        assert_eq!(mgr.stats().writes, 0);
        assert_eq!(mgr.stats().write_failures, 2);
        // No half-written checkpoint became visible.
        assert!(mgr.checkpoints().is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn d2h_bytes_are_charged_to_the_device() {
        use exastro_parallel::{DeviceConfig, SimDevice};
        let root = tmp_root("d2h");
        let dev = SimDevice::new(DeviceConfig::v100());
        let mgr = CheckpointManager::new(&root)
            .unwrap()
            .with_device(dev.clone());
        let snap = snap_at(1, 1.0);
        mgr.write(&snap).unwrap();
        let ds = dev.stats();
        assert_eq!(ds.d2h_copies, 1);
        assert_eq!(ds.d2h_bytes, snap.payload_bytes());
        assert!(ds.d2h_us > 0.0);
        let _ = fs::remove_dir_all(&root);
    }
}
