//! Integrity manifests: a CRC32 + size record for every file of a
//! checkpoint directory, written last so a complete manifest implies a
//! complete checkpoint.
//!
//! The manifest is the corruption detector: a truncated blob changes its
//! size, a bit flip changes its CRC, a torn write leaves no manifest at
//! all. Verification walks every listed file and recomputes both.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MAGIC: &str = "exastro-manifest-v1";

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
///
/// Table-free bitwise form: checkpoint blobs are streamed through
/// [`crc32_update`] in chunks, so the per-byte cost is amortized against
/// file I/O and a 256-entry table buys nothing measurable here.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming CRC32 update: feed `state = 0xFFFF_FFFF`, then chunks, then
/// XOR the result with `0xFFFF_FFFF`.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

/// CRC32 of a whole file, streamed.
pub fn crc32_file(path: &Path) -> std::io::Result<(u32, u64)> {
    let mut f = fs::File::open(path)?;
    let mut buf = vec![0u8; 64 * 1024];
    let mut state = 0xFFFF_FFFFu32;
    let mut size = 0u64;
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        state = crc32_update(state, &buf[..n]);
        size += n as u64;
    }
    Ok((state ^ 0xFFFF_FFFF, size))
}

/// One manifest entry: a file's checkpoint-relative path, size, and CRC32.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Path relative to the checkpoint directory (`/`-separated).
    pub rel_path: String,
    /// File size in bytes.
    pub size: u64,
    /// CRC32 of the file contents.
    pub crc: u32,
}

/// The integrity manifest of one checkpoint directory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Entries, sorted by relative path.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Build a manifest over every regular file under `dir` (recursively),
    /// excluding any existing manifest file itself.
    pub fn over_dir(dir: &Path) -> std::io::Result<Self> {
        let mut entries = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in fs::read_dir(&d)? {
                let entry = entry?;
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else {
                    let rel = p
                        .strip_prefix(dir)
                        .expect("walk stays under dir")
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy().into_owned())
                        .collect::<Vec<_>>()
                        .join("/");
                    if rel == MANIFEST_NAME {
                        continue;
                    }
                    let (crc, size) = crc32_file(&p)?;
                    entries.push(ManifestEntry {
                        rel_path: rel,
                        size,
                        crc,
                    });
                }
            }
        }
        entries.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Manifest { entries })
    }

    /// Total payload bytes covered by the manifest.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Serialize to the text format stored as `MANIFEST`.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(MAGIC);
        s.push('\n');
        s.push_str(&format!("nfiles {}\n", self.entries.len()));
        for e in &self.entries {
            s.push_str(&format!("{:08x} {} {}\n", e.crc, e.size, e.rel_path));
        }
        s
    }

    /// Parse the text format written by [`Manifest::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty manifest")?;
        if magic != MAGIC {
            return Err(format!("bad manifest magic '{magic}'"));
        }
        let nfiles: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("nfiles "))
            .ok_or("missing nfiles")?
            .parse()
            .map_err(|e| format!("bad nfiles: {e}"))?;
        let mut entries = Vec::with_capacity(nfiles);
        for _ in 0..nfiles {
            let line = lines.next().ok_or("truncated manifest")?;
            let mut it = line.splitn(3, ' ');
            let crc = u32::from_str_radix(it.next().ok_or("missing crc")?, 16)
                .map_err(|e| format!("bad crc: {e}"))?;
            let size: u64 = it
                .next()
                .ok_or("missing size")?
                .parse()
                .map_err(|e| format!("bad size: {e}"))?;
            let rel_path = it.next().ok_or("missing path")?.to_string();
            entries.push(ManifestEntry {
                rel_path,
                size,
                crc,
            });
        }
        Ok(Manifest { entries })
    }

    /// Load the manifest stored inside checkpoint directory `dir`.
    pub fn load(dir: &Path) -> Result<Self, String> {
        let text =
            fs::read_to_string(dir.join(MANIFEST_NAME)).map_err(|e| format!("no manifest: {e}"))?;
        Self::from_text(&text)
    }

    /// Verify every listed file of `dir` against its recorded size and CRC.
    /// Returns the first discrepancy as an error string.
    pub fn verify(&self, dir: &Path) -> Result<(), String> {
        for e in &self.entries {
            let p: PathBuf = dir.join(&e.rel_path);
            let (crc, size) =
                crc32_file(&p).map_err(|err| format!("{}: unreadable: {err}", e.rel_path))?;
            if size != e.size {
                return Err(format!(
                    "{}: size {} != recorded {}",
                    e.rel_path, size, e.size
                ));
            }
            if crc != e.crc {
                return Err(format!(
                    "{}: crc {:08x} != recorded {:08x}",
                    e.rel_path, crc, e.crc
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming equals one-shot.
        let whole = crc32(b"hello, checkpoint");
        let mut st = 0xFFFF_FFFFu32;
        st = crc32_update(st, b"hello, ");
        st = crc32_update(st, b"checkpoint");
        assert_eq!(st ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn manifest_roundtrip_and_verify() {
        let dir = std::env::temp_dir().join(format!("exastro_manifest_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("Level_00")).unwrap();
        fs::write(dir.join("Meta"), b"meta contents").unwrap();
        fs::write(dir.join("Level_00/fab_00000.bin"), vec![7u8; 4096]).unwrap();
        let m = Manifest::over_dir(&dir).unwrap();
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.total_bytes(), 13 + 4096);
        fs::write(dir.join(MANIFEST_NAME), m.to_text()).unwrap();
        let loaded = Manifest::load(&dir).unwrap();
        assert_eq!(loaded, m);
        loaded.verify(&dir).unwrap();
        // A single flipped bit is detected.
        let blob = dir.join("Level_00/fab_00000.bin");
        let mut data = fs::read(&blob).unwrap();
        data[100] ^= 0x10;
        fs::write(&blob, data).unwrap();
        assert!(loaded.verify(&dir).unwrap_err().contains("crc"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_missing_files_are_detected() {
        let dir = std::env::temp_dir().join(format!("exastro_manifest_tr_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.bin"), vec![1u8; 100]).unwrap();
        let m = Manifest::over_dir(&dir).unwrap();
        fs::write(dir.join("a.bin"), vec![1u8; 50]).unwrap();
        assert!(m.verify(&dir).unwrap_err().contains("size"));
        fs::remove_file(dir.join("a.bin")).unwrap();
        assert!(m.verify(&dir).unwrap_err().contains("unreadable"));
        let _ = fs::remove_dir_all(&dir);
    }
}
