//! Shared step-recovery policy and the emergency-checkpoint escape hatch.
//!
//! Both drivers (Castro's compressible stepper and MAESTROeX's low-Mach
//! stepper) run the same transactional-step protocol: snapshot → advance →
//! validate → on violation restore the snapshot, cut `dt`, and retry — the
//! step-retry mechanism of the production Castro code (Zingale et al.
//! 2019). [`RecoveryOptions`] is the knob set they share; it lives here
//! because both driver crates already depend on `exastro-resilience` and
//! on nothing of each other.
//!
//! When the rejection budget is exhausted the run is *not* aborted: the
//! driver calls [`write_emergency`] to persist the (restored, pre-step)
//! state as a normal integrity-checked checkpoint and returns a structured
//! error. A human — or a restart script — gets a resumable run plus the
//! failure record, instead of a core dump.

use crate::manager::{CheckpointManager, Error};
use crate::snapshot::Snapshot;
use std::path::{Path, PathBuf};

/// Policy knobs for the transactional step-rejection loop.
#[derive(Clone, Debug)]
pub struct RecoveryOptions {
    /// Maximum step attempts (1 initial + `max_rejections − 1` retries)
    /// before the step is declared unrecoverable.
    pub max_rejections: u32,
    /// Factor applied to `dt` after each rejection (Castro retries with
    /// dt/4 by default).
    pub dt_cut: f64,
    /// Tolerated |ΣX − 1| drift in the post-step validator.
    pub species_tol: f64,
    /// Where to write the emergency checkpoint when the step is
    /// unrecoverable; `None` disables the emergency write.
    pub emergency_dir: Option<PathBuf>,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            max_rejections: 4,
            dt_cut: 0.25,
            species_tol: 1e-6,
            emergency_dir: None,
        }
    }
}

impl RecoveryOptions {
    /// Enable emergency checkpoints under `dir`.
    pub fn with_emergency_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.emergency_dir = Some(dir.into());
        self
    }
}

/// Write `snap` as an emergency checkpoint under `dir`, using the full
/// atomic/manifested write path of [`CheckpointManager`]. A pre-existing
/// checkpoint for the same step is replaced — an emergency write must not
/// fail just because a scheduled checkpoint already used the name.
pub fn write_emergency(dir: &Path, snap: &Snapshot) -> Result<PathBuf, Error> {
    let mgr = CheckpointManager::new(dir)?;
    let name = CheckpointManager::checkpoint_name(snap.clock.step);
    let existing = dir.join(&name);
    if existing.is_dir() {
        std::fs::remove_dir_all(&existing)?;
    }
    mgr.write(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Clock, Snapshot};
    use exastro_amr::{BoxArray, Geometry, MultiFab};

    fn tiny_snapshot(step: u64) -> Snapshot {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mut mf = MultiFab::local(ba, 1, 1);
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                mf.fab_mut(i).set(
                    iv,
                    0,
                    1.5 + (iv.x() + 2 * iv.y() + 3 * iv.z()) as f64 * 0.01,
                );
            }
        }
        Snapshot::single_level(
            geom,
            mf,
            Clock {
                step,
                time: 0.25,
                dt: 0.01,
            },
            vec!["rho".into()],
        )
    }

    #[test]
    fn emergency_write_is_a_valid_checkpoint() {
        let dir = std::env::temp_dir().join(format!("exastro-emrg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snap = tiny_snapshot(17);
        let path = write_emergency(&dir, &snap).unwrap();
        assert!(path.ends_with("chk00000017"));
        let mgr = CheckpointManager::new(&dir).unwrap();
        let restored = mgr.resume().unwrap();
        assert_eq!(restored.digest(), snap.digest());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn emergency_write_replaces_existing_checkpoint_of_same_step() {
        let dir = std::env::temp_dir().join(format!("exastro-emrg2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = tiny_snapshot(9);
        write_emergency(&dir, &first).unwrap();
        let mut second = tiny_snapshot(9);
        second.clock.time = 0.75;
        // Same step number: must overwrite, not error.
        write_emergency(&dir, &second).unwrap();
        let restored = CheckpointManager::new(&dir).unwrap().resume().unwrap();
        assert_eq!(restored.clock.time.to_bits(), 0.75f64.to_bits());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_options_defaults_are_sane() {
        let o = RecoveryOptions::default();
        assert_eq!(o.max_rejections, 4);
        assert!(o.dt_cut > 0.0 && o.dt_cut < 1.0);
        assert!(o.emergency_dir.is_none());
        let o = o.with_emergency_dir("/tmp/x");
        assert!(o.emergency_dir.is_some());
    }
}
