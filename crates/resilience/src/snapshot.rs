//! The in-memory image of a restartable run: every AMR level's geometry
//! and state, the step counters, and any auxiliary 1-D arrays a solver
//! carries outside its `MultiFab`s (e.g. the MAESTROeX hydrostatic base
//! state).
//!
//! A [`Snapshot`] is everything a driver needs to continue **bit-exactly**:
//! restoring one and re-running the loop must reproduce the uninterrupted
//! run byte for byte (ghost zones are not stored — every solver refills
//! them at the top of a step).

use crate::manifest::{crc32_update, Manifest};
use exastro_amr::{Geometry, MultiFab, Real};

/// Step counters of a run: the quantities outside the field data that the
/// time loop needs to continue.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Clock {
    /// Completed steps.
    pub step: u64,
    /// Simulation time.
    pub time: Real,
    /// Last timestep taken (informational; drivers recompute dt from the
    /// restored state, which is what makes the resume bit-exact).
    pub dt: Real,
}

/// One AMR level of a snapshot.
#[derive(Clone, Debug)]
pub struct LevelSnapshot {
    /// The level geometry.
    pub geom: Geometry,
    /// The level state (valid region only; ghosts refill on resume).
    pub state: MultiFab,
    /// Refinement ratio to the next coarser level (1 at the base).
    pub ratio_to_coarser: i32,
}

/// A complete restartable image of a run.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Levels, coarsest first.
    pub levels: Vec<LevelSnapshot>,
    /// Step counters.
    pub clock: Clock,
    /// Component names (shared by all levels).
    pub variables: Vec<String>,
    /// Named auxiliary 1-D arrays (solver-private state such as the
    /// low-Mach base state). Names must be `[A-Za-z0-9_]+`.
    pub aux: Vec<(String, Vec<Real>)>,
}

impl Snapshot {
    /// A single-level snapshot with no auxiliary arrays.
    pub fn single_level(
        geom: Geometry,
        state: MultiFab,
        clock: Clock,
        variables: Vec<String>,
    ) -> Self {
        Snapshot {
            levels: vec![LevelSnapshot {
                geom,
                state,
                ratio_to_coarser: 1,
            }],
            clock,
            variables,
            aux: Vec::new(),
        }
    }

    /// An auxiliary array by name.
    pub fn aux_array(&self, name: &str) -> Option<&[Real]> {
        self.aux
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Payload bytes of the field data (what a checkpoint must move D2H):
    /// valid zones × components × 8 bytes, over all levels, plus the
    /// auxiliary arrays.
    pub fn payload_bytes(&self) -> u64 {
        let mut b = 0u64;
        for l in &self.levels {
            for i in 0..l.state.nfabs() {
                b += l.state.valid_box(i).num_zones() as u64 * l.state.ncomp() as u64 * 8;
            }
        }
        for (_, v) in &self.aux {
            b += v.len() as u64 * 8;
        }
        b
    }

    /// Order-sensitive digest of the full snapshot contents (field bytes,
    /// aux arrays, and the clock). Two runs are bit-identical iff their
    /// digests match; tests and the restart example compare these.
    pub fn digest(&self) -> u64 {
        let mut st = 0xFFFF_FFFFu32;
        for l in &self.levels {
            st = digest_multifab_update(st, &l.state);
        }
        for (name, v) in &self.aux {
            st = crc32_update(st, name.as_bytes());
            for x in v {
                st = crc32_update(st, &x.to_le_bytes());
            }
        }
        st = crc32_update(st, &self.clock.step.to_le_bytes());
        st = crc32_update(st, &self.clock.time.to_bits().to_le_bytes());
        let crc = st ^ 0xFFFF_FFFF;
        // Widen with the zone count so trivially different shapes cannot
        // collide on an empty CRC.
        let zones: u64 = self
            .levels
            .iter()
            .map(|l| l.state.box_array().total_zones() as u64)
            .sum();
        ((crc as u64) << 32) | (zones & 0xFFFF_FFFF)
    }
}

fn digest_multifab_update(mut st: u32, mf: &MultiFab) -> u32 {
    for i in 0..mf.nfabs() {
        let vb = mf.valid_box(i);
        for c in 0..mf.ncomp() {
            for iv in vb.iter() {
                st = crc32_update(st, &mf.fab(i).get(iv, c).to_le_bytes());
            }
        }
    }
    st
}

/// CRC32 digest of one `MultiFab`'s valid data (fab-major, component-major
/// within a fab, little-endian) — the hash used by the restart CI gate.
pub fn digest_multifab(mf: &MultiFab) -> u32 {
    digest_multifab_update(0xFFFF_FFFF, mf) ^ 0xFFFF_FFFF
}

/// Digest of a set of per-level states (for drivers that keep states
/// outside a [`Snapshot`]).
pub fn digest_states(states: &[MultiFab]) -> u32 {
    let mut st = 0xFFFF_FFFFu32;
    for s in states {
        st = digest_multifab_update(st, s);
    }
    st ^ 0xFFFF_FFFF
}

/// Convenience: digest over a checkpoint directory's manifest (identifies
/// the on-disk bytes rather than the in-memory state).
pub fn digest_manifest(m: &Manifest) -> u32 {
    crc32_update(0xFFFF_FFFF, m.to_text().as_bytes()) ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::BoxArray;

    fn small_state(seed: Real) -> (Geometry, MultiFab) {
        let geom = Geometry::cube(8, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mut mf = MultiFab::local(ba, 2, 1);
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            for iv in vb.iter() {
                for c in 0..2 {
                    let v = seed + (iv.x() + 10 * iv.y() + 100 * iv.z()) as Real + c as Real * 0.5;
                    mf.fab_mut(i).set(iv, c, v);
                }
            }
        }
        (geom, mf)
    }

    #[test]
    fn digest_is_sensitive_to_state_and_clock() {
        let (geom, mf) = small_state(1.0);
        let snap = Snapshot::single_level(
            geom.clone(),
            mf.clone(),
            Clock {
                step: 3,
                time: 0.25,
                dt: 0.01,
            },
            vec!["a".into(), "b".into()],
        );
        let d0 = snap.digest();
        // Same contents, same digest.
        let snap_same = Snapshot::single_level(
            geom.clone(),
            mf.clone(),
            Clock {
                step: 3,
                time: 0.25,
                dt: 0.01,
            },
            vec!["a".into(), "b".into()],
        );
        assert_eq!(snap_same.digest(), d0);
        // One ULP in one zone changes it.
        let (_, mut mf2) = small_state(1.0);
        let iv = mf2.valid_box(0).lo();
        let v = mf2.fab(0).get(iv, 0);
        mf2.fab_mut(0).set(iv, 0, v + v * f64::EPSILON);
        let snap2 = Snapshot::single_level(
            geom.clone(),
            mf2,
            Clock {
                step: 3,
                time: 0.25,
                dt: 0.01,
            },
            vec!["a".into(), "b".into()],
        );
        assert_ne!(snap2.digest(), d0);
        // A different step count changes it.
        let mut snap3 = snap.clone();
        snap3.clock.step = 4;
        assert_ne!(snap3.digest(), d0);
    }

    #[test]
    fn payload_bytes_counts_valid_zones_only() {
        let (geom, mf) = small_state(0.0);
        let mut snap = Snapshot::single_level(geom, mf, Clock::default(), vec![]);
        // 8³ zones × 2 comps × 8 bytes; ghosts excluded.
        assert_eq!(snap.payload_bytes(), 512 * 2 * 8);
        snap.aux.push(("rho0".into(), vec![0.0; 10]));
        assert_eq!(snap.payload_bytes(), 512 * 2 * 8 + 80);
    }
}
