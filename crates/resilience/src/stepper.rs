//! Driver-agnostic transactional stepping.
//!
//! [`Stepper`] is the contract a time-integration driver (compressible
//! Castro, low-Mach MAESTROeX, anything future) exposes to hosting
//! infrastructure — the multi-tenant service, soak harnesses, fault
//! drills — that advances a simulation without knowing which physics it
//! is running. The contract bakes in the suite's recovery discipline:
//! [`Stepper::step`] is **transactional**. On `Ok` the state holds the
//! accepted step; on `Err` the state has been restored to its pre-step
//! contents (the driver's snapshot/retry ladder ran and was exhausted),
//! so the host can retire, re-queue, or fail the job over from its last
//! durable checkpoint without inspecting driver internals.
//!
//! Telemetry travels *through* the driver: hosts move their persistent
//! [`StepRecorder`] into the driver before stepping and reclaim it with
//! [`Stepper::take_recorder`] afterward, so step ordinals and run clocks
//! stay continuous across short-lived per-slice driver instances.

use exastro_amr::{CommTrace, Geometry, MultiFab, Real};
use exastro_telemetry::StepRecorder;

/// What one accepted step produced, reduced to the fields every driver
/// can report.
#[derive(Clone, Debug, Default)]
pub struct StepOutcome {
    /// The timestep actually taken — at most the `dt` requested, smaller
    /// if the driver's rejection ladder cut it.
    pub dt_taken: Real,
    /// Communication the step performed (ghost exchanges, solver fills),
    /// merged across the step's phases.
    pub comm: CommTrace,
}

/// A step that failed after exhausting the driver's retry ladder. The
/// state has been restored to its pre-step contents; `message` is the
/// driver's structured error flattened to its display form.
#[derive(Clone, Debug)]
pub struct StepFailure {
    /// Human-readable cause, `{}`-formatted from the driver's error.
    pub message: String,
}

impl StepFailure {
    /// Wrap a driver error's display form.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for StepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for StepFailure {}

/// A time-integration driver advancing one [`MultiFab`] level behind
/// transactional semantics. See the module docs for the contract.
pub trait Stepper {
    /// Largest stable timestep for the current state (CFL and any
    /// driver-specific limits), before host-side caps.
    fn estimate_dt(&self, state: &MultiFab, geom: &Geometry) -> Real;

    /// Advance one step transactionally: on `Err` the state is restored
    /// to its pre-step contents and an emergency checkpoint may have been
    /// written per the driver's [`RecoveryOptions`](crate::RecoveryOptions).
    fn step(
        &mut self,
        state: &mut MultiFab,
        geom: &Geometry,
        dt: Real,
    ) -> Result<StepOutcome, StepFailure>;

    /// Reclaim the metrics recorder the host moved into this driver, so
    /// ordinals continue into the next (possibly different) driver.
    fn take_recorder(&mut self) -> StepRecorder;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stepper that fails every `fail_every`-th call — exercises the
    /// trait-object path hosts actually use.
    struct Flaky {
        calls: u32,
        fail_every: u32,
        recorder: StepRecorder,
    }

    impl Stepper for Flaky {
        fn estimate_dt(&self, _state: &MultiFab, _geom: &Geometry) -> Real {
            0.5
        }
        fn step(
            &mut self,
            _state: &mut MultiFab,
            _geom: &Geometry,
            dt: Real,
        ) -> Result<StepOutcome, StepFailure> {
            self.calls += 1;
            if self.calls.is_multiple_of(self.fail_every) {
                Err(StepFailure::new("ladder exhausted"))
            } else {
                Ok(StepOutcome {
                    dt_taken: dt,
                    comm: CommTrace::default(),
                })
            }
        }
        fn take_recorder(&mut self) -> StepRecorder {
            std::mem::take(&mut self.recorder)
        }
    }

    #[test]
    fn trait_object_steps_and_surfaces_failures() {
        use exastro_amr::{BoxArray, IndexBox};
        let geom = Geometry::cube(4, 1.0, true);
        let ba = BoxArray::decompose(IndexBox::cube(4), 4, 1);
        let mut state = MultiFab::local(ba, 1, 0);
        let mut drv: Box<dyn Stepper> = Box::new(Flaky {
            calls: 0,
            fail_every: 3,
            recorder: StepRecorder::new(),
        });
        let dt = drv.estimate_dt(&state, &geom);
        assert!(drv.step(&mut state, &geom, dt).is_ok());
        assert!(drv.step(&mut state, &geom, dt).is_ok());
        let err = drv.step(&mut state, &geom, dt).unwrap_err();
        assert!(err.to_string().contains("ladder exhausted"));
        let _ = drv.take_recorder();
    }
}
