//! The cluster event log: one structured, sim-clock-timestamped record
//! per scheduling decision, streamed through an [`EventSink`] (the same
//! sink pattern [`exastro_telemetry::MetricsSink`] uses for step metrics).
//!
//! The counters and histograms the service already keeps answer *how
//! many* — failures, recoveries, preemptions — but not *what happened to
//! job 3*. The event log answers that: every admit, lease, start,
//! preempt, checkpoint, node failure, lease revocation, recovery,
//! migration, quarantine, and completion lands here with the simulated
//! timestamp and scheduler tick it happened at, so a post-mortem can
//! replay any job's timeline — and the SLO metrics in
//! [`crate::ServiceReport`] (deadline hit rate, queue latency, MTTR
//! series) can be *re-derived from the log alone*, which the integration
//! tests verify exactly.
//!
//! Each event serializes to one self-describing JSONL line under the
//! `exastro.event.v1` schema (hand-rolled JSON — the workspace is
//! registry-free). Optional fields are omitted, not nulled, so consumers
//! can `jq 'select(.kind == "revoke")'` without null-guards.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::spec::{JobId, PriorityClass};

/// What happened. Stable lowercase names (the JSONL `kind` key) are the
/// schema CI checks against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A spec passed validation and entered the admission queue.
    Admit,
    /// A submission was refused (backpressure or invalid spec).
    Reject,
    /// A gang lease was granted (the `ranks` field lists the members).
    Lease,
    /// The job began (or resumed) advancing on its lease.
    Start,
    /// The job was checkpointed off the machine for a higher class.
    Preempt,
    /// A checkpoint was written (cadence, initial, or migration).
    Checkpoint,
    /// The fault model killed a node under the service.
    NodeFail,
    /// A dead node returned to service.
    NodeRepair,
    /// A lease was surrendered because ranks under it died; the `ranks`
    /// field lists the dead members, `lost_steps` the work rolled back.
    Revoke,
    /// A previously-failed job got back onto the machine (`mttr_s` is the
    /// simulated time from rank death to renewed placement).
    Recover,
    /// The job was checkpoint-migrated off a straggling node.
    Migrate,
    /// The job was circuit-broken into quarantine.
    Quarantine,
    /// The job ran all requested steps (`latency_s`, and `deadline_s`
    /// when the spec set one, price the SLO).
    Complete,
    /// The job died on an unrecoverable driver error.
    Fail,
}

impl EventKind {
    /// Stable lowercase name used in the JSONL `kind` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Reject => "reject",
            EventKind::Lease => "lease",
            EventKind::Start => "start",
            EventKind::Preempt => "preempt",
            EventKind::Checkpoint => "checkpoint",
            EventKind::NodeFail => "node_fail",
            EventKind::NodeRepair => "node_repair",
            EventKind::Revoke => "revoke",
            EventKind::Recover => "recover",
            EventKind::Migrate => "migrate",
            EventKind::Quarantine => "quarantine",
            EventKind::Complete => "complete",
            EventKind::Fail => "fail",
        }
    }
}

/// One cluster event. `sim_us`/`tick` are always present; everything else
/// is per-kind (see [`EventKind`]) and omitted from the JSONL line when
/// absent.
#[derive(Clone, Debug)]
pub struct Event {
    /// Simulated-clock timestamp, microseconds since service start.
    pub sim_us: f64,
    /// Scheduler tick the event happened in.
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
    /// The job involved, if any.
    pub job: Option<JobId>,
    /// The job's priority class, if any.
    pub class: Option<PriorityClass>,
    /// The node involved (node-fail / node-repair).
    pub node: Option<usize>,
    /// The job's step count at the event.
    pub step: Option<u64>,
    /// Ranks involved (lease members, or the dead ranks of a revoke).
    pub ranks: Vec<usize>,
    /// Human-readable context (reject reasons, quarantine causes, ...).
    pub detail: String,
    /// Submit → terminal wall seconds (complete/fail/quarantine).
    pub latency_s: Option<f64>,
    /// The spec's soft deadline, seconds (complete, when one was set).
    pub deadline_s: Option<f64>,
    /// Simulated seconds from rank death to renewed placement (recover).
    pub mttr_s: Option<f64>,
    /// Steps rolled back to the last checkpoint (revoke).
    pub lost_steps: Option<u64>,
    /// Wall seconds the job waited in the queue before this start.
    pub queue_wait_s: Option<f64>,
}

impl Event {
    /// A bare event with every optional field empty; call sites fill in
    /// the per-kind fields with struct-update syntax.
    pub fn new(sim_us: f64, tick: u64, kind: EventKind) -> Event {
        Event {
            sim_us,
            tick,
            kind,
            job: None,
            class: None,
            node: None,
            step: None,
            ranks: Vec::new(),
            detail: String::new(),
            latency_s: None,
            deadline_s: None,
            mttr_s: None,
            lost_steps: None,
            queue_wait_s: None,
        }
    }

    /// One self-describing JSONL line (no trailing newline). Optional
    /// fields absent from the event are absent from the line.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"schema\": \"exastro.event.v1\", \"sim_us\": {}, \"tick\": {}, \"kind\": \"{}\"",
            self.sim_us,
            self.tick,
            self.kind.name()
        );
        if let Some(j) = self.job {
            s += &format!(", \"job\": \"{j}\"");
        }
        if let Some(c) = self.class {
            s += &format!(", \"class\": \"{}\"", c.name());
        }
        if let Some(n) = self.node {
            s += &format!(", \"node\": {n}");
        }
        if let Some(st) = self.step {
            s += &format!(", \"step\": {st}");
        }
        if !self.ranks.is_empty() {
            let list: Vec<String> = self.ranks.iter().map(|r| r.to_string()).collect();
            s += &format!(", \"ranks\": [{}]", list.join(", "));
        }
        if let Some(v) = self.latency_s {
            s += &format!(", \"latency_s\": {v}");
        }
        if let Some(v) = self.deadline_s {
            s += &format!(", \"deadline_s\": {v}");
        }
        if let Some(v) = self.mttr_s {
            s += &format!(", \"mttr_s\": {v}");
        }
        if let Some(v) = self.lost_steps {
            s += &format!(", \"lost_steps\": {v}");
        }
        if let Some(v) = self.queue_wait_s {
            s += &format!(", \"queue_wait_s\": {v}");
        }
        if !self.detail.is_empty() {
            s += &format!(", \"detail\": \"{}\"", json_escape(&self.detail));
        }
        s += "}";
        s
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Where events go. Mirrors [`exastro_telemetry::MetricsSink`]: `record`
/// must not panic on IO trouble (the scheduler keeps running through a
/// full disk); errors are surfaced at [`EventSink::flush`].
pub trait EventSink: Send + Sync {
    /// Append one event.
    fn record(&self, ev: &Event);
    /// Surface any deferred IO error. Default: nothing to flush.
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Keeps every event in memory (tests, report reconciliation).
#[derive(Default)]
pub struct MemoryEventSink {
    events: Mutex<Vec<Event>>,
}

impl MemoryEventSink {
    /// An empty in-memory log.
    pub fn new() -> MemoryEventSink {
        MemoryEventSink::default()
    }

    /// Copy of everything recorded so far, in order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }
}

impl EventSink for MemoryEventSink {
    fn record(&self, ev: &Event) {
        self.events.lock().unwrap().push(ev.clone());
    }
}

/// Appends one JSON line per event to a file, flushing each line (a
/// crash loses at most the event being written). IO errors after a
/// successful open are sticky and surface at [`EventSink::flush`], the
/// same contract as [`exastro_telemetry::JsonlSink`].
pub struct JsonlEventSink {
    file: Mutex<File>,
    path: PathBuf,
    error: Mutex<Option<String>>,
}

impl JsonlEventSink {
    /// Create (truncate) the event log at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlEventSink> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlEventSink {
            file: Mutex::new(file),
            path,
            error: Mutex::new(None),
        })
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EventSink for JsonlEventSink {
    fn record(&self, ev: &Event) {
        let mut f = self.file.lock().unwrap();
        let line = ev.to_json();
        if let Err(e) = writeln!(f, "{line}").and_then(|()| f.flush()) {
            let mut slot = self.error.lock().unwrap();
            if slot.is_none() {
                *slot = Some(format!("{}: {e}", self.path.display()));
            }
        }
    }

    fn flush(&self) -> std::io::Result<()> {
        match self.error.lock().unwrap().clone() {
            Some(msg) => Err(std::io::Error::other(msg)),
            None => Ok(()),
        }
    }
}

/// Discards everything (the default when no sink is configured).
#[derive(Default)]
pub struct NullEventSink;

impl EventSink for NullEventSink {
    fn record(&self, _ev: &Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_only_their_fields() {
        let bare = Event::new(1.5e6, 3, EventKind::NodeFail);
        let line = bare.to_json();
        assert!(line.contains("\"schema\": \"exastro.event.v1\""));
        assert!(line.contains("\"kind\": \"node_fail\""));
        assert!(
            !line.contains("latency_s"),
            "absent fields stay absent: {line}"
        );

        let full = Event {
            job: Some(JobId(7)),
            class: Some(PriorityClass::High),
            ranks: vec![0, 1],
            latency_s: Some(2.25),
            deadline_s: Some(3.0),
            detail: "say \"why\"".into(),
            ..Event::new(2e6, 4, EventKind::Complete)
        };
        let line = full.to_json();
        for key in [
            "\"job\": \"job-0007\"",
            "\"class\": \"high\"",
            "\"ranks\": [0, 1]",
            "\"latency_s\": 2.25",
            "\"deadline_s\": 3",
            "\\\"why\\\"",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn jsonl_event_sink_appends_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("exastro-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlEventSink::create(&path).unwrap();
        sink.record(&Event::new(0.0, 1, EventKind::Admit));
        sink.record(&Event {
            job: Some(JobId(1)),
            ..Event::new(1.0, 2, EventKind::Start)
        });
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\": \"admit\""));
        assert!(lines[1].contains("\"kind\": \"start\""));
    }
}
