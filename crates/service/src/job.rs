//! One admitted job: its physics state, driver glue, and checkpoint
//! lifecycle.
//!
//! A [`Job`] owns everything a simulation needs (EOS, network, state,
//! geometry, base state for low-Mach runs) and is advanced in *slices* —
//! a few steps per scheduling quantum — by a driver built fresh per slice
//! borrowing the job's physics. The per-job [`StepRecorder`] travels into
//! and back out of each transient driver, so step ordinals and the run
//! clock stay continuous across slices, preemptions, and resumes.

use std::path::PathBuf;
use std::sync::Arc;

use exastro_amr::{BcSpec, BoxArray, CoordSys, Geometry, IndexBox, MultiFab};
use exastro_castro::{
    init_collision, init_sedov, snapshot_level, Castro, CollisionParams, Floors, Gravity,
    GravityMode, SedovParams, StateLayout,
};
use exastro_maestro::{
    init_bubble, restore_base_state, snapshot_run, BaseState, BubbleParams, LmLayout, Maestro,
};
use exastro_microphysics::{
    Composition, Eos, GammaLaw, Network, RetryLadder, SolverChoice, StellarEos,
};
use exastro_resilience::recovery::RecoveryOptions;
use exastro_resilience::snapshot::{digest_multifab, Clock, Snapshot};
use exastro_resilience::stepper::Stepper;
use exastro_resilience::CheckpointManager;
use exastro_telemetry::{JsonlSink, MemorySink, MetricsSink, MultiSink, StepRecorder};

use crate::spec::{JobId, JobSpec, Scenario};
use exastro_castro::BurnOptions;

/// A structured checkpoint-lifecycle error. Once leases can be revoked
/// mid-slice, "resume with no checkpoint on disk" is a *reachable* state,
/// not a scheduler bug — it must be a contained, matchable error rather
/// than a panic or a stringly-typed one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// Resume was asked for before any checkpoint was ever written.
    NoCheckpoint,
    /// The per-job checkpoint directory could not be created or opened.
    CheckpointInit(String),
    /// A scheduled or eviction checkpoint failed to write.
    CheckpointWrite(String),
    /// The newest intact checkpoint could not be restored.
    Restore(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::NoCheckpoint => {
                write!(f, "no checkpoint exists for this job (never written)")
            }
            JobError::CheckpointInit(why) => write!(f, "checkpoint root: {why}"),
            JobError::CheckpointWrite(why) => write!(f, "checkpoint write: {why}"),
            JobError::Restore(why) => write!(f, "restore: {why}"),
        }
    }
}

impl std::error::Error for JobError {}

/// How a slice of execution ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum SliceStatus {
    /// The job ran its quantum and has steps left.
    Ran,
    /// The job reached its requested step count.
    Finished,
    /// The driver reported an unrecoverable error; the job is dead.
    Failed(String),
}

/// Scenario-specific physics payload.
pub(crate) enum Physics {
    /// Compressible (Castro) scenarios.
    Castro(StateLayout),
    /// Low-Mach (MAESTROeX) scenarios, which carry a 1-D base state.
    Maestro { layout: LmLayout, base: BaseState },
}

/// One admitted job and everything needed to advance, checkpoint, and
/// resume it.
pub(crate) struct Job {
    pub id: JobId,
    pub spec: JobSpec,
    pub geom: Geometry,
    pub state: MultiFab,
    pub physics: Physics,
    pub clock: Clock,
    eos: Box<dyn Eos + Send + Sync>,
    net: Box<dyn Network + Send + Sync>,
    /// Persistent per-job recorder: ordinals continue across slices.
    recorder: StepRecorder,
    /// In-memory copy of every step record, aggregated into the report.
    pub memory: Arc<MemorySink>,
    /// Lazily created per-job checkpoint directory manager.
    ckpt: Option<CheckpointManager>,
    ckpt_dir: PathBuf,
    /// Steps between scheduled checkpoints (Young/Daly unless overridden).
    pub ckpt_every: u64,
    /// Ranks this job leases while running.
    pub ranks_needed: usize,
    /// Modeled machine time one step costs, microseconds.
    pub step_sim_us: f64,
    /// Modeled machine time consumed so far, microseconds.
    pub sim_us: f64,
    /// Weighted fair-share virtual time (sim-us received / weight).
    pub vtime: f64,
    /// Times this job has been checkpointed off the machine.
    pub preemptions: u32,
    /// Times this job has been re-admitted from checkpoint after its
    /// ranks died underneath it.
    pub recoveries: u32,
    /// Times this job has been checkpoint-migrated off a straggling node.
    pub migrations: u32,
    /// Admission order (fair-share tiebreak).
    pub submit_seq: u64,
    /// Wall-clock submit instant (job latency measurement).
    pub submitted_at: std::time::Instant,
    /// Wall-clock instant of the latest queue entry (admission or any
    /// requeue) — per-class queue-latency measurement.
    pub queued_at: std::time::Instant,
    /// Scheduling rounds the job has been overtaken while queued.
    pub bypassed: u32,
    /// Scheduling rounds the job's gang has exceeded in-service capacity.
    pub capacity_waits: u64,
    /// Recovery backoff: the job may not place before this tick.
    pub eligible_at_tick: u64,
    /// Step the newest checkpoint holds (lost-work accounting).
    pub last_ckpt_step: u64,
    /// Whether any checkpoint was ever written (guards resume).
    pub ckpt_written: bool,
    /// Sim clock when the job's ranks died (MTTR measurement); cleared
    /// when it gets back onto the machine.
    pub failed_at_sim_us: Option<f64>,
    /// True between a preemption and the matching resume: the field data
    /// lives only in the checkpoint, not in memory.
    evicted: bool,
}

/// Per-scenario dt cap (numerical hygiene for the violent first steps;
/// mirrors what the standalone examples use).
fn dt_cap(s: Scenario) -> f64 {
    match s {
        Scenario::SedovBlast => 2e-3,
        Scenario::ReactingBubble => 4e-3,
        Scenario::WdCollision => f64::INFINITY,
        Scenario::XrbFlame => f64::INFINITY,
    }
}

/// Initialize an accreted helium layer igniting at its base: an
/// X-ray-burst flame column. Plane-parallel, hot (`3×10⁸ K`) below a
/// tanh interface, cool (`10⁸ K`) above, pure helium fuel.
fn init_xrb(
    state: &mut MultiFab,
    geom: &Geometry,
    layout: &StateLayout,
    eos: &dyn Eos,
    net: &dyn Network,
) {
    let ihe = net
        .species()
        .iter()
        .position(|s| s.name == "he4")
        .expect("xrb_flame needs he4 (validated at submit)");
    let mut x = vec![0.0; layout.nspec];
    x[ihe] = 1.0;
    let comp = Composition::from_mass_fractions(net.species(), &x);
    let zlo = geom.prob_lo()[2];
    let height = geom.prob_length(2);
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let z = (geom.cell_center(iv)[2] - zlo) / height;
            // Hot ignition layer at the base, tanh edge at z = 0.2.
            let hot = 0.5 * (1.0 - ((z - 0.2) / 0.08).tanh());
            let t = 1e8 + 2e8 * hot;
            let rho = 5e5 * (1.0 - 0.4 * z);
            let r = eos.eval_rt(rho, t, &comp);
            let fab = state.fab_mut(i);
            fab.set(iv, StateLayout::RHO, rho);
            fab.set(iv, StateLayout::MX, 0.0);
            fab.set(iv, StateLayout::MY, 0.0);
            fab.set(iv, StateLayout::MZ, 0.0);
            fab.set(iv, StateLayout::EDEN, rho * r.e);
            fab.set(iv, StateLayout::EINT, rho * r.e);
            fab.set(iv, StateLayout::TEMP, t);
            for (s, xs) in x.iter().enumerate() {
                fab.set(iv, layout.spec(s), rho * xs);
            }
        }
    }
}

impl Job {
    /// Build the job's initial condition and telemetry plumbing.
    ///
    /// `jsonl_dir`, when set, receives a `job-NNNN.steps.jsonl` stream;
    /// step records always also land in the in-memory sink for the
    /// service report.
    pub(crate) fn build(
        id: JobId,
        spec: JobSpec,
        ranks_needed: usize,
        submit_seq: u64,
        ckpt_root: &std::path::Path,
        jsonl_dir: Option<&std::path::Path>,
    ) -> Result<Job, String> {
        let n = spec.resolution;
        let net = spec.network.build();
        let (eos, geom, state, physics): (Box<dyn Eos + Send + Sync>, Geometry, MultiFab, Physics) =
            match spec.scenario {
                Scenario::SedovBlast => {
                    let eos = GammaLaw::monatomic();
                    let layout = StateLayout::new(net.nspec());
                    let geom = Geometry::cube(n, 1.0, false);
                    let ba = BoxArray::decompose(geom.domain(), 12, 4);
                    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
                    init_sedov(&mut state, &geom, &layout, &eos, &SedovParams::default());
                    (Box::new(eos), geom, state, Physics::Castro(layout))
                }
                Scenario::WdCollision => {
                    let eos = StellarEos;
                    let layout = StateLayout::new(net.nspec());
                    let params = CollisionParams {
                        v_approach: 6e8,
                        separation: 3.0,
                        ..Default::default()
                    };
                    let half_width = 2.5 * params.radius;
                    let geom = Geometry::new(
                        IndexBox::cube(n),
                        [-half_width; 3],
                        [half_width; 3],
                        [false; 3],
                        CoordSys::Cartesian,
                    );
                    let ba = BoxArray::decompose(geom.domain(), 12, 4);
                    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
                    init_collision(&mut state, &geom, &layout, &eos, &*net, &params);
                    (Box::new(eos), geom, state, Physics::Castro(layout))
                }
                Scenario::XrbFlame => {
                    let eos = StellarEos;
                    let layout = StateLayout::new(net.nspec());
                    // A 2×10³ cm column of the neutron-star envelope.
                    let geom = Geometry::new(
                        IndexBox::cube(n),
                        [0.0; 3],
                        [2e3; 3],
                        [true, true, false],
                        CoordSys::Cartesian,
                    );
                    let ba = BoxArray::decompose(geom.domain(), 12, 4);
                    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
                    init_xrb(&mut state, &geom, &layout, &eos, &*net);
                    (Box::new(eos), geom, state, Physics::Castro(layout))
                }
                Scenario::ReactingBubble => {
                    let eos = StellarEos;
                    let layout = LmLayout::new(net.nspec());
                    let geom = Geometry::new(
                        IndexBox::cube(n),
                        [0.0; 3],
                        [3.6e7; 3],
                        [true, true, false],
                        CoordSys::Cartesian,
                    );
                    let ba = BoxArray::decompose(geom.domain(), 12, 4);
                    let mut state = MultiFab::local(ba, layout.ncomp(), 1);
                    let base = init_bubble(
                        &mut state,
                        &geom,
                        &layout,
                        &eos,
                        &*net,
                        &BubbleParams::default(),
                    );
                    (
                        Box::new(eos),
                        geom,
                        state,
                        Physics::Maestro { layout, base },
                    )
                }
            };

        // Telemetry: in-memory always (feeds the report), JSONL when asked.
        let memory = Arc::new(MemorySink::new());
        let mut recorder = StepRecorder::new();
        let mut sinks: Vec<Arc<dyn MetricsSink>> = vec![memory.clone()];
        if let Some(dir) = jsonl_dir {
            let path = dir.join(format!("{id}.steps.jsonl"));
            let sink =
                JsonlSink::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
            sinks.push(Arc::new(sink));
        }
        recorder.attach_sink(Arc::new(MultiSink::new(sinks)));

        Ok(Job {
            ckpt_dir: ckpt_root.join(id.to_string()),
            id,
            spec,
            geom,
            state,
            physics,
            clock: Clock::default(),
            eos,
            net,
            recorder,
            memory,
            ckpt: None,
            ckpt_every: 0, // set by the scheduler (Young/Daly or explicit)
            ranks_needed,
            step_sim_us: 0.0,
            sim_us: 0.0,
            vtime: 0.0,
            preemptions: 0,
            recoveries: 0,
            migrations: 0,
            submit_seq,
            submitted_at: std::time::Instant::now(),
            queued_at: std::time::Instant::now(),
            bypassed: 0,
            capacity_waits: 0,
            eligible_at_tick: 0,
            last_ckpt_step: 0,
            ckpt_written: false,
            failed_at_sim_us: None,
            evicted: false,
        })
    }

    /// CRC32 of the job's conserved state (bit-exactness probe).
    pub(crate) fn state_digest(&self) -> u32 {
        digest_multifab(&self.state)
    }

    /// Zones in the job's domain.
    pub(crate) fn zones(&self) -> u64 {
        let s = self.geom.domain().size();
        (s.x() as u64) * (s.y() as u64) * (s.z() as u64)
    }

    /// Advance up to `quantum` steps. Checkpoints on the job's cadence.
    pub(crate) fn run_slice(&mut self, quantum: u64) -> SliceStatus {
        for _ in 0..quantum {
            if self.clock.step >= self.spec.steps {
                return SliceStatus::Finished;
            }
            if let Err(why) = self.step_once() {
                return SliceStatus::Failed(why);
            }
            self.sim_us += self.step_sim_us;
            if self.ckpt_every > 0 && self.clock.step.is_multiple_of(self.ckpt_every) {
                if let Err(why) = self.checkpoint() {
                    return SliceStatus::Failed(why.to_string());
                }
            }
        }
        if self.clock.step >= self.spec.steps {
            SliceStatus::Finished
        } else {
            SliceStatus::Ran
        }
    }

    fn step_once(&mut self) -> Result<(), String> {
        let cap = dt_cap(self.spec.scenario);
        let recorder = std::mem::take(&mut self.recorder);
        let mut drv = build_stepper(&self.spec, &self.physics, &*self.eos, &*self.net, recorder);
        let dt = drv.estimate_dt(&self.state, &self.geom).min(cap);
        let result = drv.step(&mut self.state, &self.geom, dt);
        self.recorder = drv.take_recorder();
        let outcome = result.map_err(|e| e.to_string())?;
        self.clock.step += 1;
        self.clock.time += outcome.dt_taken;
        self.clock.dt = outcome.dt_taken;
        Ok(())
    }

    fn snapshot(&self) -> Snapshot {
        match &self.physics {
            Physics::Castro(layout) => snapshot_level(&self.geom, &self.state, self.clock, layout),
            Physics::Maestro { layout, base } => {
                snapshot_run(&self.geom, &self.state, base, self.clock, layout)
            }
        }
    }

    fn manager(&mut self) -> Result<&CheckpointManager, JobError> {
        if self.ckpt.is_none() {
            let mgr = CheckpointManager::new(&self.ckpt_dir)
                .map_err(|e| JobError::CheckpointInit(format!("{}: {e}", self.ckpt_dir.display())))?
                .keep_last(2);
            self.ckpt = Some(mgr);
        }
        self.ckpt.as_ref().ok_or(JobError::NoCheckpoint)
    }

    /// Write a durable checkpoint of the current state.
    pub(crate) fn checkpoint(&mut self) -> Result<(), JobError> {
        let snap = self.snapshot();
        let step = self.clock.step;
        self.manager()?
            .write(&snap)
            .map_err(|e| JobError::CheckpointWrite(e.to_string()))?;
        self.ckpt_written = true;
        self.last_ckpt_step = step;
        Ok(())
    }

    /// Checkpoint bytes one snapshot of this job carries (Young/Daly `C`).
    pub(crate) fn checkpoint_bytes(&self) -> u64 {
        self.snapshot().payload_bytes()
    }

    /// Drop the in-memory field data, leaving only the checkpoint (if
    /// any) behind. The stub state makes a "resume" that forgot to
    /// restore fail loudly instead of silently reusing old memory — an
    /// evicted job must carry no rank-local state.
    fn drop_field_data(&mut self) {
        self.state = MultiFab::local(BoxArray::decompose(IndexBox::cube(1), 1, 1), 1, 0);
        self.evicted = true;
    }

    /// Evict the job from the machine: checkpoint, then drop the
    /// in-memory field data. The job is now resumable from disk only —
    /// which is the point: a migrated job must carry no rank-local state.
    pub(crate) fn preempt(&mut self) -> Result<(), JobError> {
        self.checkpoint()?;
        self.preemptions += 1;
        self.drop_field_data();
        Ok(())
    }

    /// Checkpoint-migrate off a straggling node: identical mechanics to
    /// [`Job::preempt`] but charged to the migration budget, not the
    /// preemption-immunity budget — mitigating a slow node must not eat
    /// the job's protection against priority churn.
    pub(crate) fn migrate(&mut self) -> Result<(), JobError> {
        self.checkpoint()?;
        self.migrations += 1;
        self.drop_field_data();
        Ok(())
    }

    /// Fail over after the job's ranks died: the in-memory state is gone
    /// with the node, so *discard* it (no checkpoint write — there is
    /// nothing trustworthy to write) and mark the job resumable from its
    /// last durable checkpoint only.
    pub(crate) fn fail_over(&mut self) {
        self.recoveries += 1;
        self.drop_field_data();
    }

    /// Restore state from the newest intact checkpoint (after preemption,
    /// possibly onto different ranks — the state travels on disk).
    /// [`JobError::NoCheckpoint`] when none was ever written — reachable
    /// when a lease is revoked before the first cadence point.
    pub(crate) fn resume(&mut self) -> Result<(), JobError> {
        if !self.ckpt_written {
            return Err(JobError::NoCheckpoint);
        }
        let snap = self
            .manager()?
            .resume()
            .map_err(|e| JobError::Restore(e.to_string()))?;
        if let Physics::Maestro { base, .. } = &mut self.physics {
            *base = restore_base_state(&snap)
                .ok_or_else(|| JobError::Restore("checkpoint missing base state".into()))?;
        }
        let lvl = &snap.levels[0];
        self.geom = lvl.geom.clone();
        self.state = lvl.state.clone();
        self.clock = snap.clock;
        self.evicted = false;
        Ok(())
    }

    /// Whether the job's field data lives only in its checkpoint (true
    /// between a preemption and the matching resume).
    pub(crate) fn is_evicted(&self) -> bool {
        self.evicted
    }

    /// Flush the job's telemetry stream. Best-effort: a full disk must
    /// not fail job retirement, so any deferred IO error is dropped here
    /// (the per-job JSONL sink keeps it sticky for callers that ask).
    pub(crate) fn flush_telemetry(&self) {
        self.recorder.flush().ok();
    }
}

/// Build the per-slice transactional driver for `physics` behind the
/// driver-agnostic [`Stepper`] contract. A free function over split-out
/// borrows rather than a `&self` method: the returned driver captures only
/// `eos` and `net`, leaving `&mut job.state` free for the step itself.
fn build_stepper<'a>(
    spec: &JobSpec,
    physics: &Physics,
    eos: &'a (dyn Eos + Send + Sync),
    net: &'a (dyn Network + Send + Sync),
    recorder: StepRecorder,
) -> Box<dyn Stepper + 'a> {
    match physics {
        Physics::Castro(_) => {
            let mut drv = Castro::new(eos, net);
            configure_castro(spec, &mut drv);
            drv.telemetry = recorder;
            Box::new(drv)
        }
        Physics::Maestro { layout, base } => Box::new(Maestro {
            layout: LmLayout::new(layout.nspec),
            eos,
            net,
            base: base.clone(),
            cfl: 0.5,
            do_burn: true,
            burn_min_temp: 1e8,
            ladder: RetryLadder::default(),
            burn_solver: SolverChoice::default(),
            burn_faults: spec.burn_faults.clone(),
            burn_batch_width: 8,
            overlap: true,
            recovery: RecoveryOptions::default(),
            telemetry: recorder,
        }),
    }
}

/// Scenario-specific Castro configuration (CFL, floors, gravity,
/// burning) -- shared by every Castro-family scenario the service runs.
fn configure_castro(spec: &JobSpec, drv: &mut Castro<'_>) {
    match spec.scenario {
        Scenario::SedovBlast => {
            drv.hydro.cfl = 0.4;
            drv.hydro.floors = Floors::dimensionless();
            drv.bc = BcSpec::outflow();
            // Burning only matters here when a fault drill asks for
            // it: zero thresholds make every zone eligible, so the
            // injected faults actually fire.
            if spec.burn_faults.is_some() {
                drv.burn = Some(BurnOptions {
                    min_temp: 0.0,
                    min_dens: 0.0,
                    faults: spec.burn_faults.clone(),
                    ..Default::default()
                });
            }
        }
        Scenario::WdCollision => {
            drv.hydro.cfl = 0.2;
            drv.gravity = Gravity {
                mode: GravityMode::Monopole,
                n_bins: 256,
            };
            drv.bc = BcSpec::outflow();
            drv.burn = Some(BurnOptions {
                min_temp: 5e8,
                min_dens: 1e4,
                faults: spec.burn_faults.clone(),
                ..Default::default()
            });
        }
        Scenario::XrbFlame => {
            drv.bc = BcSpec::outflow();
            drv.burn = Some(BurnOptions {
                min_temp: 1.5e8,
                min_dens: 1e2,
                faults: spec.burn_faults.clone(),
                ..Default::default()
            });
        }
        Scenario::ReactingBubble => unreachable!("bubble runs on maestro"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    /// The satellite fix: resume before any checkpoint exists is a
    /// contained, matchable [`JobError::NoCheckpoint`], not a panic —
    /// reachable once leases can be revoked before the first cadence
    /// point.
    #[test]
    fn resume_without_checkpoint_is_a_contained_error() {
        let dir = std::env::temp_dir().join(format!("exastro_job_nockpt_{}", std::process::id()));
        let mut job = Job::build(JobId(0), JobSpec::default(), 6, 0, &dir, None).unwrap();
        assert_eq!(job.resume().unwrap_err(), JobError::NoCheckpoint);
        // Once a checkpoint exists, the same call restores bit-exactly.
        let digest = job.state_digest();
        job.checkpoint().unwrap();
        job.fail_over();
        assert!(job.is_evicted());
        assert_ne!(job.state_digest(), digest, "evicted state must be a stub");
        job.resume().unwrap();
        assert_eq!(job.state_digest(), digest);
        assert_eq!(job.recoveries, 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
