//! # exastro-service
//!
//! Simulation-as-a-service: a multi-tenant job runtime over the cluster
//! simulator. The ROADMAP's north star is a production system serving
//! heavy traffic — campaigns of many independent runs across scenarios,
//! networks, and node counts (Katz et al. §IV) — not one bulk-synchronous
//! job at a time. This crate composes the pieces earlier PRs built into
//! that serving layer:
//!
//! - **Admission**: [`Service::submit`] takes a [`JobSpec`] (scenario ×
//!   network × resolution × nodes × priority) through a *bounded* queue;
//!   a full queue answers [`SubmitError::QueueFull`] — backpressure, not
//!   buffering without limit.
//! - **Placement**: jobs gang-lease ranks from a
//!   [`exastro_machine::RankPool`] over the modeled machine and advance
//!   concurrently on the worker pool (`exastro_parallel`), a few steps
//!   per scheduling quantum, through the transactional
//!   `advance_level_safe`/`advance_safe` drivers.
//! - **Fair share**: weighted by [`PriorityClass`] (virtual time = work
//!   received / weight), with a bypass-count starvation guard that lets a
//!   repeatedly-overtaken job reserve the pool.
//! - **Preemption**: a strictly-higher-class arrival on a full pool
//!   checkpoints a victim off the machine
//!   (`exastro_resilience::CheckpointManager`), requeues it, and resumes
//!   it later — generally on different ranks. Bit-exact restart makes the
//!   migration invisible to the answer, and the integration tests prove
//!   it by digest.
//! - **Cadence**: each job's default checkpoint interval is the
//!   Young/Daly optimum for *its* footprint on *this* machine
//!   ([`exastro_resilience::interval::suggest_cadence_steps`]); an
//!   explicit `ckpt_every` overrides.
//! - **Self-healing** (DESIGN.md §15): arm [`ServiceConfig::faults`] with
//!   a seeded [`exastro_machine::NodeFaultModel`] and the modeled machine
//!   fails underneath the service over simulated time. The health monitor
//!   revokes leases whose ranks died (`RankPool::revoke_failed`), fails
//!   the slice over *without* checkpointing dead state, and re-admits the
//!   job from its last checkpoint on a fresh lease with bounded
//!   exponential backoff — bit-exact by digest vs an uninterrupted run.
//!   Poison jobs quarantine after `quarantine_limit` recoveries
//!   ([`JobOutcome::Quarantined`], structured reason); stragglers are
//!   checkpoint-migrated to healthy nodes; gangs that no longer fit the
//!   surviving pool quarantine instead of wedging the queue.
//! - **Telemetry**: per-job `StepRecorder` streams (JSONL per job plus an
//!   in-memory sink), service counters (`service.submitted`,
//!   `service.completed`, `service.failed`, `service.preempted`,
//!   `service.rejected`, plus `service.node_failures`,
//!   `service.lease_revocations`, `service.recoveries`,
//!   `service.straggler_migrations`, `service.quarantined` under chaos),
//!   MTTR/detection-latency/lost-steps histograms, and a
//!   [`ServiceReport`] with jobs/hour, latency percentiles, and rank
//!   utilization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
mod job;
pub mod report;
pub mod scheduler;
pub mod spec;

pub use events::{Event, EventKind, EventSink, JsonlEventSink, MemoryEventSink, NullEventSink};
pub use job::JobError;
pub use report::{ClassQueueWait, JobOutcome, JobRecord, ServiceReport};
pub use scheduler::{Service, ServiceConfig};
pub use spec::{JobId, JobSpec, NetChoice, PriorityClass, Scenario, SubmitError};
