//! Service-level and per-job summaries.

use crate::spec::{JobId, NetChoice, PriorityClass, Scenario};

/// How a job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran all requested steps.
    Completed,
    /// Died on an unrecoverable driver error (the message says why).
    Failed(String),
}

/// Terminal record of one job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Service-assigned id.
    pub id: JobId,
    /// Scenario the job ran.
    pub scenario: Scenario,
    /// Network it burned with.
    pub network: NetChoice,
    /// Deadline/priority class.
    pub priority: PriorityClass,
    /// Zones per side.
    pub resolution: i32,
    /// Nodes requested.
    pub nodes: usize,
    /// Ranks leased while running.
    pub ranks: usize,
    /// Steps actually completed.
    pub steps_done: u64,
    /// Steps the spec asked for.
    pub steps_requested: u64,
    /// Completed or failed (with reason).
    pub outcome: JobOutcome,
    /// Times the job was checkpointed off the machine for a higher class.
    pub preemptions: u32,
    /// Submit → terminal wall seconds.
    pub latency_s: f64,
    /// Whether the soft deadline was met (when one was set).
    pub deadline_met: Option<bool>,
    /// Checkpoint cadence used (Young/Daly unless the spec overrode it).
    pub ckpt_every: u64,
    /// CRC32 of the final conserved state (bit-exactness probe).
    pub final_digest: u32,
    /// Modeled machine microseconds consumed.
    pub sim_us: f64,
    /// Zones in the job's domain.
    pub zones: u64,
    /// Step-metrics records captured for this job.
    pub step_records: u64,
}

/// Point-in-time service summary (see [`crate::Service::report`]).
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Wall seconds since the service started.
    pub wall_s: f64,
    /// Jobs ever submitted (admitted or not).
    pub submitted: u64,
    /// Submissions refused (backpressure or invalid spec).
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs that died on a driver error.
    pub failed: usize,
    /// Preemption events (checkpoint → requeue → resume elsewhere).
    pub preemptions: u64,
    /// Jobs waiting right now.
    pub queue_depth: usize,
    /// Deepest the queue ever got.
    pub queue_peak: usize,
    /// The configured admission bound.
    pub queue_bound: usize,
    /// Jobs on the machine right now.
    pub running: usize,
    /// Ranks in the pool.
    pub total_ranks: usize,
    /// Leased rank-seconds over available rank-seconds, 0..1.
    pub rank_utilization: f64,
    /// Completed jobs per hour of service wall time.
    pub jobs_per_hour: f64,
    /// Median completed-job latency, seconds.
    pub latency_p50_s: f64,
    /// 99th-percentile completed-job latency, seconds.
    pub latency_p99_s: f64,
    /// Terminal records, in completion order.
    pub jobs: Vec<JobRecord>,
}

impl std::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "service: {:.2}s wall | {} submitted ({} rejected) | {} completed, {} failed | \
             {} preemption(s)",
            self.wall_s,
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.preemptions
        )?;
        writeln!(
            f,
            "queue: depth {} (peak {}, bound {}) | running {} | {} ranks at {:.1}% utilization",
            self.queue_depth,
            self.queue_peak,
            self.queue_bound,
            self.running,
            self.total_ranks,
            100.0 * self.rank_utilization
        )?;
        writeln!(
            f,
            "throughput: {:.1} jobs/hour | latency p50 {:.3}s p99 {:.3}s",
            self.jobs_per_hour, self.latency_p50_s, self.latency_p99_s
        )?;
        writeln!(
            f,
            "{:>9} {:>16} {:>12} {:>7} {:>6} {:>6} {:>6} {:>7} {:>9} {:>9}",
            "job",
            "scenario",
            "net",
            "class",
            "res",
            "steps",
            "preempt",
            "ckpt",
            "latency",
            "outcome"
        )?;
        for r in &self.jobs {
            let outcome = match &r.outcome {
                JobOutcome::Completed => "ok".to_string(),
                JobOutcome::Failed(_) => "FAILED".to_string(),
            };
            writeln!(
                f,
                "{:>9} {:>16} {:>12} {:>7} {:>6} {:>6} {:>7} {:>7} {:>8.3}s {:>9}",
                r.id.to_string(),
                r.scenario.name(),
                r.network.name(),
                r.priority.name(),
                r.resolution,
                r.steps_done,
                r.preemptions,
                r.ckpt_every,
                r.latency_s,
                outcome
            )?;
        }
        Ok(())
    }
}
