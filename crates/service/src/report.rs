//! Service-level and per-job summaries.

use crate::spec::{JobId, NetChoice, PriorityClass, Scenario};

/// Render an `Option<f64>` as a JSON number or `null`.
fn json_opt(v: Option<f64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

/// How a job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran all requested steps.
    Completed,
    /// Died on an unrecoverable driver error (the message says why).
    Failed(String),
    /// Circuit-broken by the scheduler: the job exhausted its recovery
    /// budget (or waited out degraded capacity) and was parked with a
    /// structured reason instead of looping through the machine forever.
    Quarantined(String),
}

/// Terminal record of one job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Service-assigned id.
    pub id: JobId,
    /// Scenario the job ran.
    pub scenario: Scenario,
    /// Network it burned with.
    pub network: NetChoice,
    /// Deadline/priority class.
    pub priority: PriorityClass,
    /// Zones per side.
    pub resolution: i32,
    /// Nodes requested.
    pub nodes: usize,
    /// Ranks leased while running.
    pub ranks: usize,
    /// Steps actually completed.
    pub steps_done: u64,
    /// Steps the spec asked for.
    pub steps_requested: u64,
    /// Completed, failed (with reason), or quarantined (with reason).
    pub outcome: JobOutcome,
    /// Times the job was checkpointed off the machine for a higher class.
    pub preemptions: u32,
    /// Times the job was re-admitted from checkpoint after its ranks died.
    pub recoveries: u32,
    /// Times the job was checkpoint-migrated off a straggling node.
    pub migrations: u32,
    /// Submit → terminal wall seconds.
    pub latency_s: f64,
    /// Whether the soft deadline was met (when one was set).
    pub deadline_met: Option<bool>,
    /// Checkpoint cadence used (Young/Daly unless the spec overrode it).
    pub ckpt_every: u64,
    /// CRC32 of the final conserved state (bit-exactness probe).
    pub final_digest: u32,
    /// Modeled machine microseconds consumed.
    pub sim_us: f64,
    /// Zones in the job's domain.
    pub zones: u64,
    /// Step-metrics records captured for this job.
    pub step_records: u64,
}

/// Per-class queue-latency SLO: wall seconds from queue entry (admission
/// or requeue) to placement, nearest-rank percentiles.
#[derive(Clone, Debug)]
pub struct ClassQueueWait {
    /// The priority class the samples belong to.
    pub class: PriorityClass,
    /// Placements measured.
    pub samples: usize,
    /// Median queue wait, seconds.
    pub p50_s: f64,
    /// 99th-percentile queue wait, seconds.
    pub p99_s: f64,
}

/// Point-in-time service summary (see [`crate::Service::report`]).
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Wall seconds since the service started.
    pub wall_s: f64,
    /// Jobs ever submitted (admitted or not).
    pub submitted: u64,
    /// Submissions refused (backpressure or invalid spec).
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs that died on a driver error.
    pub failed: usize,
    /// Jobs circuit-broken into quarantine.
    pub quarantined: usize,
    /// Preemption events (checkpoint → requeue → resume elsewhere).
    pub preemptions: u64,
    /// Node-kill events the fault model injected under the service.
    pub node_failures: u64,
    /// Leases surrendered because their ranks died.
    pub lease_revocations: u64,
    /// Successful re-admissions from checkpoint after a node failure.
    pub recoveries: u64,
    /// Checkpoint-migrations off straggling nodes.
    pub straggler_migrations: u64,
    /// Jobs waiting right now.
    pub queue_depth: usize,
    /// Deepest the queue ever got.
    pub queue_peak: usize,
    /// The configured admission bound.
    pub queue_bound: usize,
    /// Jobs on the machine right now.
    pub running: usize,
    /// Ranks in the pool.
    pub total_ranks: usize,
    /// Ranks currently in service (total minus dead-and-unrepaired).
    pub ranks_in_service: usize,
    /// Leased rank-seconds over available rank-seconds, 0..1.
    pub rank_utilization: f64,
    /// Completed jobs per hour of service wall time.
    pub jobs_per_hour: f64,
    /// Median completed-job latency, seconds.
    pub latency_p50_s: f64,
    /// 99th-percentile completed-job latency, seconds.
    pub latency_p99_s: f64,
    /// Fraction of deadlined jobs that met their deadline (`None` when no
    /// terminal job carried one) — the headline SLO.
    pub deadline_hit_rate: Option<f64>,
    /// Queue-latency percentiles per priority class (classes with no
    /// placements are omitted).
    pub queue_wait_by_class: Vec<ClassQueueWait>,
    /// Time-to-recovery series: simulated seconds from each rank death to
    /// the job's renewed placement, in occurrence order.
    pub mttr_s: Vec<f64>,
    /// Terminal records, in completion order.
    pub jobs: Vec<JobRecord>,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl ServiceReport {
    /// Hand-rolled JSON rendering (the workspace is registry-free: no
    /// serde). Failed jobs carry an `"error"` key, quarantined jobs a
    /// `"reason"` key; CI schema-checks both.
    pub fn to_json(&self) -> String {
        let r = self;
        let mut s = String::from("{\n");
        s += &format!("  \"wall_s\": {},\n", r.wall_s);
        s += &format!("  \"submitted\": {},\n", r.submitted);
        s += &format!("  \"rejected\": {},\n", r.rejected);
        s += &format!("  \"completed\": {},\n", r.completed);
        s += &format!("  \"failed\": {},\n", r.failed);
        s += &format!("  \"quarantined\": {},\n", r.quarantined);
        s += &format!("  \"preemptions\": {},\n", r.preemptions);
        s += &format!("  \"node_failures\": {},\n", r.node_failures);
        s += &format!("  \"lease_revocations\": {},\n", r.lease_revocations);
        s += &format!("  \"recoveries\": {},\n", r.recoveries);
        s += &format!("  \"straggler_migrations\": {},\n", r.straggler_migrations);
        s += &format!("  \"queue_peak\": {},\n", r.queue_peak);
        s += &format!("  \"queue_bound\": {},\n", r.queue_bound);
        s += &format!("  \"total_ranks\": {},\n", r.total_ranks);
        s += &format!("  \"ranks_in_service\": {},\n", r.ranks_in_service);
        s += &format!("  \"rank_utilization\": {},\n", r.rank_utilization);
        s += &format!("  \"jobs_per_hour\": {},\n", r.jobs_per_hour);
        s += &format!("  \"latency_p50_s\": {},\n", r.latency_p50_s);
        s += &format!("  \"latency_p99_s\": {},\n", r.latency_p99_s);
        s += &format!(
            "  \"deadline_hit_rate\": {},\n",
            json_opt(r.deadline_hit_rate)
        );
        s += "  \"queue_wait_by_class\": [\n";
        for (i, q) in r.queue_wait_by_class.iter().enumerate() {
            s += &format!(
                "    {{\"class\": \"{}\", \"samples\": {}, \"p50_s\": {}, \"p99_s\": {}}}{}\n",
                q.class.name(),
                q.samples,
                q.p50_s,
                q.p99_s,
                if i + 1 < r.queue_wait_by_class.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        s += "  ],\n";
        let mttr: Vec<String> = r.mttr_s.iter().map(|v| v.to_string()).collect();
        s += &format!("  \"mttr_s\": [{}],\n", mttr.join(", "));
        s += "  \"jobs\": [\n";
        for (i, j) in r.jobs.iter().enumerate() {
            s += "    {";
            s += &format!("\"id\": \"{}\", ", j.id);
            s += &format!("\"scenario\": \"{}\", ", j.scenario.name());
            s += &format!("\"network\": \"{}\", ", j.network.name());
            s += &format!("\"priority\": \"{}\", ", j.priority.name());
            s += &format!("\"resolution\": {}, ", j.resolution);
            s += &format!("\"nodes\": {}, ", j.nodes);
            s += &format!("\"ranks\": {}, ", j.ranks);
            s += &format!("\"steps_done\": {}, ", j.steps_done);
            s += &format!("\"steps_requested\": {}, ", j.steps_requested);
            match &j.outcome {
                JobOutcome::Completed => s += "\"outcome\": \"completed\", ",
                JobOutcome::Failed(why) => {
                    s += &format!(
                        "\"outcome\": \"failed\", \"error\": \"{}\", ",
                        json_escape(why)
                    );
                }
                JobOutcome::Quarantined(why) => {
                    s += &format!(
                        "\"outcome\": \"quarantined\", \"reason\": \"{}\", ",
                        json_escape(why)
                    );
                }
            }
            s += &format!("\"preemptions\": {}, ", j.preemptions);
            s += &format!("\"recoveries\": {}, ", j.recoveries);
            s += &format!("\"migrations\": {}, ", j.migrations);
            s += &format!("\"latency_s\": {}, ", j.latency_s);
            s += &format!(
                "\"deadline_met\": {}, ",
                match j.deadline_met {
                    Some(b) => b.to_string(),
                    None => "null".into(),
                }
            );
            s += &format!("\"ckpt_every\": {}, ", j.ckpt_every);
            s += &format!("\"final_digest\": {}, ", j.final_digest);
            s += &format!("\"sim_us\": {}, ", j.sim_us);
            s += &format!("\"zones\": {}, ", j.zones);
            s += &format!("\"step_records\": {}", j.step_records);
            s += if i + 1 < r.jobs.len() { "},\n" } else { "}\n" };
        }
        s += "  ]\n}\n";
        s
    }
}

impl std::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "service: {:.2}s wall | {} submitted ({} rejected) | {} completed, {} failed, \
             {} quarantined | {} preemption(s)",
            self.wall_s,
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.quarantined,
            self.preemptions
        )?;
        writeln!(
            f,
            "queue: depth {} (peak {}, bound {}) | running {} | {} ranks at {:.1}% utilization",
            self.queue_depth,
            self.queue_peak,
            self.queue_bound,
            self.running,
            self.total_ranks,
            100.0 * self.rank_utilization
        )?;
        if self.node_failures > 0 || self.total_ranks != self.ranks_in_service {
            writeln!(
                f,
                "chaos: {} node failure(s) | {} lease revocation(s) | {} recovery(ies) | \
                 {} straggler migration(s) | {}/{} ranks in service",
                self.node_failures,
                self.lease_revocations,
                self.recoveries,
                self.straggler_migrations,
                self.ranks_in_service,
                self.total_ranks
            )?;
        }
        writeln!(
            f,
            "throughput: {:.1} jobs/hour | latency p50 {:.3}s p99 {:.3}s",
            self.jobs_per_hour, self.latency_p50_s, self.latency_p99_s
        )?;
        if let Some(rate) = self.deadline_hit_rate {
            writeln!(f, "slo: deadline hit rate {:.1}%", 100.0 * rate)?;
        }
        for q in &self.queue_wait_by_class {
            writeln!(
                f,
                "slo: queue wait [{}] p50 {:.3}s p99 {:.3}s over {} placement(s)",
                q.class.name(),
                q.p50_s,
                q.p99_s,
                q.samples
            )?;
        }
        writeln!(
            f,
            "{:>9} {:>16} {:>12} {:>7} {:>6} {:>6} {:>6} {:>5} {:>7} {:>9} {:>11}",
            "job",
            "scenario",
            "net",
            "class",
            "res",
            "steps",
            "preempt",
            "recov",
            "ckpt",
            "latency",
            "outcome"
        )?;
        for r in &self.jobs {
            let outcome = match &r.outcome {
                JobOutcome::Completed => "ok",
                JobOutcome::Failed(_) => "FAILED",
                JobOutcome::Quarantined(_) => "QUARANTINED",
            };
            writeln!(
                f,
                "{:>9} {:>16} {:>12} {:>7} {:>6} {:>6} {:>7} {:>5} {:>7} {:>8.3}s {:>11}",
                r.id.to_string(),
                r.scenario.name(),
                r.network.name(),
                r.priority.name(),
                r.resolution,
                r.steps_done,
                r.preemptions,
                r.recoveries,
                r.ckpt_every,
                r.latency_s,
                outcome
            )?;
        }
        Ok(())
    }
}
