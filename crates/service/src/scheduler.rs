//! The multi-tenant scheduler: bounded admission, weighted fair share,
//! gang placement on the rank pool, checkpoint-based preemption, and —
//! when a [`NodeFaultConfig`] is armed — self-healing against the
//! cluster failing underneath the jobs.
//!
//! One [`Service::tick`] is a scheduling quantum:
//!
//! 1. **Account** rank-seconds leased since the last tick (utilization).
//! 2. **Place** waiting jobs in fair-share order (lowest virtual time
//!    first; class weight, then submit order break ties). A job that
//!    cannot fit is skipped — but only [`ServiceConfig::bypass_limit`]
//!    times: after that the queue head *reserves* the pool (no later job
//!    may jump it), which bounds waiting time and kills starvation.
//!    Jobs backing off after a recovery sit out; jobs whose gang exceeds
//!    *in-service* capacity wait for repairs (and quarantine after
//!    [`ServiceConfig::capacity_patience`] rounds) instead of wedging
//!    the queue — graceful degradation.
//! 3. **Preempt** when the best waiting job outranks (strictly) the
//!    weakest running job and the pool cannot fit it: victims are
//!    checkpointed via [`exastro_resilience::CheckpointManager`],
//!    evicted, and requeued; the freed ranks go to the high job. A job
//!    is preempted at most [`ServiceConfig::max_preemptions`] times,
//!    then becomes immune (no preemption livelock).
//! 4. **Run** every placed job one slice (a few steps) concurrently on
//!    the worker pool; a resumed job restores from its newest intact
//!    checkpoint first — generally onto *different* ranks, which is safe
//!    because restarts are bit-exact. The slowest gang member sets each
//!    job's observed step cost (stragglers multiply it), and the tick's
//!    simulated-time advance drives the fault model.
//! 5. **Heal** (fault model armed): advance [`NodeFaultModel`], fail
//!    ranks whose nodes died, revoke compromised leases
//!    ([`exastro_machine::RankPool::revoke_failed`]), fail the slice,
//!    and re-admit each victim from its last checkpoint with bounded
//!    exponential backoff; a job that burns
//!    [`ServiceConfig::quarantine_limit`] recoveries is circuit-broken
//!    into [`JobOutcome::Quarantined`]. Jobs observing ≥
//!    [`ServiceConfig::straggler_migrate_factor`]× their modeled step
//!    cost are checkpoint-migrated onto healthy ranks.
//! 6. **Retire** finished and failed jobs (release ranks, final record).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use exastro_machine::{
    sedov_workload, FaultEvent, Machine, NodeFaultConfig, NodeFaultModel, RankLease, RankPool,
};
use exastro_parallel::par_each_mut;
use exastro_resilience::interval::{suggest_cadence_steps, JobProfile};
use exastro_telemetry::{counter_add, Telemetry};

use crate::events::{Event, EventKind, EventSink, NullEventSink};
use crate::job::{Job, SliceStatus};
use crate::report::{ClassQueueWait, JobOutcome, JobRecord, ServiceReport};
use crate::spec::{JobId, JobSpec, PriorityClass, SubmitError};

/// Service knobs. Defaults give a one-node pool with a small queue and
/// *no* fault injection — the shape the examples and tests use;
/// production sizing scales `nodes` and `queue_bound` up and arms
/// `faults` with the fleet's measured MTBF.
pub struct ServiceConfig {
    /// The modeled machine supplying ranks and checkpoint pricing.
    pub machine: Machine,
    /// Nodes in the rank pool (`nodes × gpus_per_node` ranks).
    pub nodes: usize,
    /// Admission queue bound; submits beyond it get backpressure.
    pub queue_bound: usize,
    /// Steps per scheduling quantum for each running job.
    pub slice_steps: u64,
    /// Times one job may be preempted before it becomes immune.
    pub max_preemptions: u32,
    /// Times a queued job may be overtaken before it reserves the pool.
    pub bypass_limit: u32,
    /// Directory for per-job `job-NNNN.steps.jsonl` streams (`None`
    /// keeps telemetry in memory only).
    pub jsonl_dir: Option<PathBuf>,
    /// Root directory for per-job checkpoint trees.
    pub ckpt_root: PathBuf,
    /// Per-node MTBF assumed by the Young/Daly cadence, seconds. When
    /// `faults` is armed with a finite MTBF, that value wins — the
    /// cadence should price the failures actually being injected.
    pub per_node_mtbf_s: f64,
    /// Whole-machine fault injection (`None` = the immortal cluster).
    pub faults: Option<NodeFaultConfig>,
    /// Observed/modeled step-cost ratio at which a running job is
    /// checkpoint-migrated off its straggling node.
    pub straggler_migrate_factor: f64,
    /// Times one job may be straggler-migrated before it rides it out.
    pub max_migrations: u32,
    /// Recovery backoff after a node failure, in ticks: the `k`-th
    /// recovery waits `min(base << (k-1), max)` ticks before the job may
    /// place again.
    pub recovery_backoff_base: u64,
    /// Upper bound on the recovery backoff, ticks.
    pub recovery_backoff_max: u64,
    /// Circuit breaker: recoveries a job may burn before it is
    /// quarantined instead of re-admitted.
    pub quarantine_limit: u32,
    /// Rounds a job may wait for its gang to fit *in-service* capacity
    /// (shrunk by dead nodes) before it is quarantined.
    pub capacity_patience: u64,
    /// Simulated time an idle tick (nothing running) advances, µs —
    /// keeps the fault model's clock moving while the queue backs off.
    pub idle_tick_sim_us: f64,
    /// Where the cluster event log goes (`None` = discard). Arm with a
    /// [`crate::events::MemoryEventSink`] to reconcile the log against
    /// the report, or a [`crate::events::JsonlEventSink`] to stream
    /// `exastro.event.v1` JSONL for post-mortems.
    pub events: Option<Arc<dyn EventSink>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            machine: Machine::summit(),
            nodes: 1,
            queue_bound: 64,
            slice_steps: 2,
            max_preemptions: 2,
            bypass_limit: 8,
            jsonl_dir: None,
            ckpt_root: std::env::temp_dir().join(format!("exastro_service_{}", std::process::id())),
            per_node_mtbf_s: 10.0 * 365.0 * 86_400.0,
            faults: None,
            straggler_migrate_factor: 2.0,
            max_migrations: 2,
            recovery_backoff_base: 1,
            recovery_backoff_max: 16,
            quarantine_limit: 3,
            capacity_patience: 200,
            idle_tick_sim_us: 1e6,
            events: None,
        }
    }
}

struct Running {
    job: Job,
    lease: RankLease,
    status: SliceStatus,
    /// Max fault-model slowdown over the lease's nodes this tick.
    slow: f64,
    /// Steps the job actually advanced this tick.
    steps_ran: u64,
    /// Set when a node under this lease died: the slice is void and the
    /// lease must be surrendered through `revoke_failed`.
    doomed: bool,
}

/// The long-running job service.
pub struct Service {
    cfg: ServiceConfig,
    pool: RankPool,
    fault_model: Option<NodeFaultModel>,
    queue: VecDeque<Job>,
    running: Vec<Running>,
    records: Vec<JobRecord>,
    next_id: u64,
    submit_seq: u64,
    started_at: Instant,
    last_tick: Instant,
    /// Σ (tick wall seconds × ranks leased) — utilization numerator.
    leased_rank_seconds: f64,
    /// Simulated-time clock driving the fault model, µs. Advances by the
    /// slowest running gang's observed slice cost each tick.
    sim_clock_us: f64,
    tick_no: u64,
    queue_peak: usize,
    submitted: u64,
    rejected: u64,
    preemptions: u64,
    node_failures: u64,
    lease_revocations: u64,
    recoveries: u64,
    straggler_migrations: u64,
    quarantined: usize,
    events: Arc<dyn EventSink>,
    /// (class, wall seconds queued) per placement — SLO queue latency.
    queue_waits: Vec<(PriorityClass, f64)>,
    /// Simulated seconds from rank death to renewed placement, in order.
    mttr_series: Vec<f64>,
}

impl Service {
    /// A service over `cfg`'s machine and knobs.
    pub fn new(cfg: ServiceConfig) -> Service {
        let pool = RankPool::new(&cfg.machine, cfg.nodes);
        let fault_model = cfg
            .faults
            .clone()
            .map(|f| NodeFaultModel::new(f, cfg.nodes));
        let now = Instant::now();
        let events = cfg
            .events
            .clone()
            .unwrap_or_else(|| Arc::new(NullEventSink));
        Service {
            pool,
            fault_model,
            events,
            cfg,
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            next_id: 0,
            submit_seq: 0,
            started_at: now,
            last_tick: now,
            leased_rank_seconds: 0.0,
            sim_clock_us: 0.0,
            tick_no: 0,
            queue_peak: 0,
            submitted: 0,
            rejected: 0,
            preemptions: 0,
            node_failures: 0,
            lease_revocations: 0,
            recoveries: 0,
            straggler_migrations: 0,
            quarantined: 0,
            queue_waits: Vec::new(),
            mttr_series: Vec::new(),
        }
    }

    /// A bare event stamped with the current sim clock and tick.
    fn event(&self, kind: EventKind) -> Event {
        Event::new(self.sim_clock_us, self.tick_no, kind)
    }

    /// Total ranks in the pool.
    pub fn total_ranks(&self) -> usize {
        self.pool.total()
    }

    /// Ranks currently in service (total minus dead-and-unrepaired).
    pub fn ranks_in_service(&self) -> usize {
        self.pool.in_service()
    }

    /// Jobs waiting for placement.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently on the machine.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Simulated seconds the service has advanced (the fault model's
    /// clock; 0 until the first tick).
    pub fn sim_clock_s(&self) -> f64 {
        self.sim_clock_us * 1e-6
    }

    /// Submit a job. `Err(QueueFull)` is backpressure — the spec was not
    /// admitted and the caller should retry later; `Err(InvalidSpec)`
    /// means the spec can never run here.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.submitted += 1;
        counter_add("service.submitted", 1);
        if let Err(why) = spec.validate() {
            self.rejected += 1;
            counter_add("service.rejected", 1);
            self.events.record(&Event {
                class: Some(spec.priority),
                detail: why.clone(),
                ..self.event(EventKind::Reject)
            });
            return Err(SubmitError::InvalidSpec(why));
        }
        let ranks_needed = spec.nodes * self.pool.gpus_per_node();
        if ranks_needed > self.pool.total() {
            self.rejected += 1;
            counter_add("service.rejected", 1);
            let why = format!(
                "job wants {ranks_needed} ranks but the pool has {}",
                self.pool.total()
            );
            self.events.record(&Event {
                class: Some(spec.priority),
                detail: why.clone(),
                ..self.event(EventKind::Reject)
            });
            return Err(SubmitError::InvalidSpec(why));
        }
        if self.queue.len() >= self.cfg.queue_bound {
            self.rejected += 1;
            counter_add("service.rejected", 1);
            self.events.record(&Event {
                class: Some(spec.priority),
                detail: format!("queue full (bound {})", self.cfg.queue_bound),
                ..self.event(EventKind::Reject)
            });
            return Err(SubmitError::QueueFull {
                bound: self.cfg.queue_bound,
            });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        let seq = self.submit_seq;
        self.submit_seq += 1;
        if let Some(dir) = &self.cfg.jsonl_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| SubmitError::InvalidSpec(format!("jsonl dir: {e}")))?;
        }
        let mut job = Job::build(
            id,
            spec,
            ranks_needed,
            seq,
            &self.cfg.ckpt_root,
            self.cfg.jsonl_dir.as_deref(),
        )
        .map_err(SubmitError::InvalidSpec)?;

        // Price one step of this job on the modeled machine (the same
        // workload builder the weak-scaling figures use) and derive the
        // Young/Daly checkpoint cadence from it unless the tenant set one.
        // When fault injection is armed with a finite MTBF, *that* is the
        // failure rate the cadence must price, not the nominal fleet MTBF.
        let wl = sedov_workload(
            &self.cfg.machine,
            job.spec.nodes,
            job.spec.resolution,
            12,
            4,
        );
        job.step_sim_us = self.cfg.machine.simulate_step(&wl).total_us;
        job.ckpt_every = match job.spec.ckpt_every {
            Some(every) => every,
            None => {
                let mtbf = self
                    .cfg
                    .faults
                    .as_ref()
                    .map(|f| f.node_mtbf_s)
                    .filter(|m| m.is_finite())
                    .unwrap_or(self.cfg.per_node_mtbf_s);
                let profile = JobProfile {
                    nodes: job.spec.nodes,
                    checkpoint_bytes: job.checkpoint_bytes(),
                    per_node_mtbf_s: mtbf,
                    step_wall_s: job.step_sim_us * 1e-6,
                };
                suggest_cadence_steps(&self.cfg.machine, &profile)
            }
        };
        counter_add("service.admitted", 1);
        self.events.record(&Event {
            job: Some(id),
            class: Some(job.spec.priority),
            detail: format!(
                "{} x {} @ {}^3 on {} node(s), {} step(s)",
                job.spec.scenario.name(),
                job.spec.network.name(),
                job.spec.resolution,
                job.spec.nodes,
                job.spec.steps
            ),
            ..self.event(EventKind::Admit)
        });
        self.queue.push_back(job);
        self.queue_peak = self.queue_peak.max(self.queue.len());
        Ok(id)
    }

    /// Fair-share ordering key for a waiting job: lowest virtual time
    /// first; heavier class, then earlier submission break ties.
    fn share_key(job: &Job) -> (f64, f64, u64) {
        (job.vtime, -job.spec.priority.weight(), job.submit_seq)
    }

    /// One scheduling quantum. Returns `false` once the service is idle
    /// (nothing queued, nothing running).
    pub fn tick(&mut self) -> bool {
        // 1. Utilization accounting for the interval just elapsed.
        let now = Instant::now();
        let dt = now.duration_since(self.last_tick).as_secs_f64();
        self.last_tick = now;
        self.leased_rank_seconds += dt * self.pool.leased() as f64;
        self.tick_no += 1;

        self.place_queued();
        self.preempt_for_priority();
        self.run_slices();
        self.advance_faults();
        self.recover_failed();
        self.mitigate_stragglers();
        self.retire();

        Telemetry::record_hist("service/queue_depth", self.queue.len() as f64);
        Telemetry::record_hist("service/running", self.running.len() as f64);
        !self.queue.is_empty() || !self.running.is_empty()
    }

    /// Drive ticks until idle or `max_ticks`; returns true if idle.
    pub fn run_until_idle(&mut self, max_ticks: usize) -> bool {
        for _ in 0..max_ticks {
            if !self.tick() {
                return true;
            }
        }
        !self.tick()
    }

    /// Nodes currently straggling (empty without a fault model).
    fn slow_nodes(&self) -> Vec<usize> {
        self.fault_model
            .as_ref()
            .map(|f| f.straggling_nodes())
            .unwrap_or_default()
    }

    fn place_queued(&mut self) {
        // Sort a view of queue indices by fair-share key.
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = Self::share_key(&self.queue[a]);
            let kb = Self::share_key(&self.queue[b]);
            ka.0.total_cmp(&kb.0)
                .then(ka.1.total_cmp(&kb.1))
                .then(ka.2.cmp(&kb.2))
        });
        let avoid = self.slow_nodes();
        let mut placed: Vec<(usize, RankLease)> = Vec::new();
        let mut quarantine: Vec<usize> = Vec::new();
        let mut blocked_reserver = false;
        for &qi in &order {
            if self.queue[qi].eligible_at_tick > self.tick_no {
                // Backing off after a recovery: sits out, neither places
                // nor reserves, and does not accrue bypasses.
                continue;
            }
            if self.queue[qi].ranks_needed > self.pool.in_service() {
                // Graceful degradation: the gang no longer fits the
                // surviving machine. Wait for repairs without wedging the
                // queue (no reservation), quarantine once patience runs
                // out so the job does not wait forever on a node that
                // will never come back.
                let job = &mut self.queue[qi];
                job.capacity_waits += 1;
                if job.capacity_waits > self.cfg.capacity_patience {
                    quarantine.push(qi);
                }
                continue;
            }
            if blocked_reserver {
                // A starving job ahead of us has reserved the pool.
                continue;
            }
            let need = self.queue[qi].ranks_needed;
            if let Some(lease) = self.pool.try_lease_avoiding(need, &avoid) {
                placed.push((qi, lease));
            } else {
                let job = &mut self.queue[qi];
                job.bypassed += 1;
                if job.bypassed > self.cfg.bypass_limit {
                    // Starvation guard: nobody may overtake this job
                    // anymore until it places.
                    blocked_reserver = true;
                }
            }
        }
        // Pull placed and quarantined jobs out of the queue (descending
        // index so the remaining indices stay valid; queue order is
        // preserved). The two sets are disjoint by construction.
        enum Act {
            Place(RankLease),
            Quarantine,
        }
        let mut acts: Vec<(usize, Act)> = placed
            .into_iter()
            .map(|(qi, l)| (qi, Act::Place(l)))
            .chain(quarantine.into_iter().map(|qi| (qi, Act::Quarantine)))
            .collect();
        acts.sort_by_key(|a| std::cmp::Reverse(a.0));
        for (qi, act) in acts {
            let job = self.queue.remove(qi).expect("acted index in queue");
            match act {
                Act::Place(lease) => self.start(job, lease),
                Act::Quarantine => {
                    let why = format!(
                        "capacity: gang wants {} ranks but only {} of {} are in service \
                         after node failures ({} round(s) waited)",
                        job.ranks_needed,
                        self.pool.in_service(),
                        self.pool.total(),
                        job.capacity_waits
                    );
                    self.finish(job, JobOutcome::Quarantined(why));
                }
            }
        }
    }

    /// When the best waiting job strictly outranks the weakest running
    /// job and cannot fit, checkpoint victims off the machine until it
    /// fits (or no eligible victims remain).
    fn preempt_for_priority(&mut self) {
        loop {
            // Highest-class waiting job that is not placeable right now.
            // Backing-off jobs and gangs beyond in-service capacity are
            // not candidates: preempting victims for a job that cannot
            // start anyway just thrashes checkpoints.
            let Some(qi) = (0..self.queue.len())
                .filter(|&i| {
                    let j = &self.queue[i];
                    j.eligible_at_tick <= self.tick_no && j.ranks_needed <= self.pool.in_service()
                })
                .max_by_key(|&i| {
                    let j = &self.queue[i];
                    (j.spec.priority, std::cmp::Reverse(j.submit_seq))
                })
            else {
                return;
            };
            let need = self.queue[qi].ranks_needed;
            let class = self.queue[qi].spec.priority;
            if self.pool.available() >= need {
                // Fits without violence; the next place_queued gets it.
                return;
            }
            // Victims: strictly lower class, not preemption-immune;
            // weakest class first, then youngest (least sunk work).
            let mut victims: Vec<usize> = (0..self.running.len())
                .filter(|&i| {
                    let j = &self.running[i].job;
                    j.spec.priority < class && j.preemptions < self.cfg.max_preemptions
                })
                .collect();
            victims.sort_by_key(|&i| {
                let j = &self.running[i].job;
                (j.spec.priority, std::cmp::Reverse(j.submit_seq))
            });
            let mut freed = self.pool.available();
            let mut chosen: Vec<usize> = Vec::new();
            for &vi in &victims {
                if freed >= need {
                    break;
                }
                freed += self.running[vi].lease.len();
                chosen.push(vi);
            }
            if freed < need || chosen.is_empty() {
                return; // not enough preemptible capacity — wait it out
            }
            // Evict chosen victims (checkpoint → release → requeue),
            // highest index first so removals do not shift the others.
            chosen.sort_unstable_by(|a, b| b.cmp(a));
            for vi in chosen {
                let mut r = self.running.swap_remove(vi);
                match r.job.preempt() {
                    Ok(()) => {
                        self.preemptions += 1;
                        counter_add("service.preempted", 1);
                        self.events.record(&Event {
                            job: Some(r.job.id),
                            class: Some(r.job.spec.priority),
                            step: Some(r.job.clock.step),
                            detail: format!("checkpointed off for class {class:?}"),
                            ..self.event(EventKind::Preempt)
                        });
                        self.pool.release(r.lease);
                        r.job.queued_at = Instant::now();
                        self.queue.push_back(r.job);
                        self.queue_peak = self.queue_peak.max(self.queue.len());
                    }
                    Err(why) => {
                        // A job we cannot checkpoint cannot be moved;
                        // fail it rather than lose its state silently.
                        self.pool.release(r.lease);
                        self.finish(r.job, JobOutcome::Failed(format!("preempt: {why}")));
                    }
                }
            }
            // Give the high job its ranks immediately.
            if let Some(lease) = self.pool.try_lease(need) {
                let job = self.queue.remove(qi).expect("high job in queue");
                self.start(job, lease);
            }
        }
    }

    fn start(&mut self, mut job: Job, lease: RankLease) {
        self.events.record(&Event {
            job: Some(job.id),
            class: Some(job.spec.priority),
            ranks: lease.ranks().to_vec(),
            ..self.event(EventKind::Lease)
        });
        if job.is_evicted() {
            if let Err(why) = job.resume() {
                self.pool.release(lease);
                self.finish(job, JobOutcome::Failed(format!("resume: {why}")));
                return;
            }
        } else if self.fault_model.is_some() && !job.ckpt_written {
            // Chaos armed: guarantee resumability *before* the first
            // step, so a node that dies ahead of the first cadence point
            // still leaves a fail-over target. (Without a fault model
            // this write is dead weight — skip it.)
            if let Err(why) = job.checkpoint() {
                self.pool.release(lease);
                self.finish(
                    job,
                    JobOutcome::Failed(format!("initial checkpoint: {why}")),
                );
                return;
            }
            self.events.record(&Event {
                job: Some(job.id),
                step: Some(job.last_ckpt_step),
                detail: "initial (pre-step resumability guarantee)".into(),
                ..self.event(EventKind::Checkpoint)
            });
        }
        if let Some(died_at) = job.failed_at_sim_us.take() {
            // Back on the machine after a node failure: MTTR is the sim
            // time from rank death to renewed placement.
            self.recoveries += 1;
            counter_add("service.recoveries", 1);
            let mttr_s = (self.sim_clock_us - died_at).max(0.0) * 1e-6;
            Telemetry::record_hist("service/mttr_sim_s", mttr_s);
            self.mttr_series.push(mttr_s);
            self.events.record(&Event {
                job: Some(job.id),
                class: Some(job.spec.priority),
                step: Some(job.clock.step),
                mttr_s: Some(mttr_s),
                ..self.event(EventKind::Recover)
            });
        }
        let queue_wait_s = job.queued_at.elapsed().as_secs_f64();
        self.queue_waits.push((job.spec.priority, queue_wait_s));
        Telemetry::record_hist("service/queue_wait_s", queue_wait_s);
        self.events.record(&Event {
            job: Some(job.id),
            class: Some(job.spec.priority),
            step: Some(job.clock.step),
            queue_wait_s: Some(queue_wait_s),
            ..self.event(EventKind::Start)
        });
        job.bypassed = 0;
        job.capacity_waits = 0;
        self.running.push(Running {
            job,
            lease,
            status: SliceStatus::Ran,
            slow: 1.0,
            steps_ran: 0,
            doomed: false,
        });
    }

    fn run_slices(&mut self) {
        if self.running.is_empty() {
            // Nothing on the machine: simulated time still flows (the
            // fault model must keep aging while the queue backs off).
            if !self.queue.is_empty() && self.fault_model.is_some() {
                self.sim_clock_us += self.cfg.idle_tick_sim_us;
            }
            return;
        }
        let quantum = self.cfg.slice_steps.max(1);
        // Observed slowdown per gang: the slowest leased node sets the
        // pace (gangs are bulk-synchronous).
        if let Some(fm) = &self.fault_model {
            let g = self.pool.gpus_per_node();
            for r in &mut self.running {
                r.slow = r
                    .lease
                    .ranks()
                    .iter()
                    .map(|&rank| fm.slowdown(rank / g))
                    .fold(1.0, f64::max);
            }
        }
        // Concurrent slices on the worker pool: one task per running job.
        let prev_ckpt: Vec<u64> = self.running.iter().map(|r| r.job.last_ckpt_step).collect();
        par_each_mut(&mut self.running, |_, r| {
            let before = r.job.clock.step;
            r.status = r.job.run_slice(quantum);
            r.steps_ran = r.job.clock.step - before;
        });
        for (r, &prev) in self.running.iter().zip(&prev_ckpt) {
            if r.job.last_ckpt_step > prev {
                self.events.record(&Event {
                    job: Some(r.job.id),
                    step: Some(r.job.last_ckpt_step),
                    detail: format!("cadence (every {} step(s))", r.job.ckpt_every),
                    ..Event::new(self.sim_clock_us, self.tick_no, EventKind::Checkpoint)
                });
            }
        }
        // Fair-share accounting (serial: needs &mut self bookkeeping),
        // and the tick's simulated-time advance: the slices above ran
        // concurrently, so the slowest gang's observed cost is the wall.
        let mut tick_sim_us = 0.0f64;
        for r in &mut self.running {
            tick_sim_us = tick_sim_us.max(r.steps_ran as f64 * r.job.step_sim_us * r.slow);
            if r.status != SliceStatus::Ran {
                continue;
            }
            let w = r.job.spec.priority.weight();
            r.job.vtime += quantum as f64 * r.job.step_sim_us / w;
        }
        if tick_sim_us <= 0.0 && self.fault_model.is_some() {
            tick_sim_us = self.cfg.idle_tick_sim_us;
        }
        self.sim_clock_us += tick_sim_us;
    }

    /// Advance the fault model to the current sim time and apply what it
    /// injected: dead nodes leave the pool (dooming the leases over
    /// them), repaired nodes return.
    fn advance_faults(&mut self) {
        let Some(fm) = &mut self.fault_model else {
            return;
        };
        let g = self.pool.gpus_per_node();
        let now_s = self.sim_clock_us * 1e-6;
        for ev in fm.advance(now_s) {
            match ev {
                FaultEvent::NodeKilled { node, at_s } => {
                    self.pool.fail_node(node);
                    self.node_failures += 1;
                    counter_add("service.node_failures", 1);
                    // Health monitor: the kill surfaces at the end of the
                    // scheduling window in which it happened.
                    Telemetry::record_hist("service/detect_latency_sim_s", (now_s - at_s).max(0.0));
                    self.events.record(&Event {
                        node: Some(node),
                        detail: format!("killed at sim t={at_s:.3}s, detected this tick"),
                        ..Event::new(self.sim_clock_us, self.tick_no, EventKind::NodeFail)
                    });
                    for r in &mut self.running {
                        if r.lease.ranks().iter().any(|&rank| rank / g == node) {
                            r.doomed = true;
                        }
                    }
                }
                FaultEvent::NodeRepaired { node, .. } => {
                    self.pool.repair_node(node);
                    self.events.record(&Event {
                        node: Some(node),
                        ..Event::new(self.sim_clock_us, self.tick_no, EventKind::NodeRepair)
                    });
                }
                // Stragglers and network degradation change *speed*, not
                // membership; run_slices queries the model each tick.
                FaultEvent::StragglerBegan { .. }
                | FaultEvent::StragglerEnded { .. }
                | FaultEvent::NetworkDegraded { .. }
                | FaultEvent::NetworkRestored { .. } => {}
            }
        }
    }

    /// The recovery ladder's cluster rung: every doomed job surrenders
    /// its lease (`revoke_failed` — surviving ranks return to the pool),
    /// discards its slice, and is either re-admitted from its last
    /// checkpoint under exponential backoff or circuit-broken into
    /// quarantine.
    fn recover_failed(&mut self) {
        let mut i = 0;
        while i < self.running.len() {
            if !self.running[i].doomed {
                i += 1;
                continue;
            }
            let mut r = self.running.swap_remove(i);
            let dead = self.pool.revoke_failed(r.lease);
            self.lease_revocations += 1;
            counter_add("service.lease_revocations", 1);
            let lost = r.job.clock.step.saturating_sub(r.job.last_ckpt_step);
            Telemetry::record_hist("service/lost_steps", lost as f64);
            self.events.record(&Event {
                job: Some(r.job.id),
                class: Some(r.job.spec.priority),
                step: Some(r.job.clock.step),
                ranks: dead.clone(),
                lost_steps: Some(lost),
                ..self.event(EventKind::Revoke)
            });
            r.job.fail_over();
            if r.job.recoveries >= self.cfg.quarantine_limit {
                let why = format!(
                    "recovery budget exhausted: {} node-failure recoveries \
                     (limit {}); last failure killed rank(s) {:?}",
                    r.job.recoveries, self.cfg.quarantine_limit, dead
                );
                self.finish(r.job, JobOutcome::Quarantined(why));
                continue;
            }
            // Bounded exponential backoff before the next placement try.
            let k = r.job.recoveries.max(1);
            let backoff = self
                .cfg
                .recovery_backoff_base
                .saturating_mul(1u64 << (k - 1).min(16))
                .min(self.cfg.recovery_backoff_max);
            r.job.eligible_at_tick = self.tick_no + backoff;
            r.job.failed_at_sim_us = Some(self.sim_clock_us);
            r.job.queued_at = Instant::now();
            self.queue.push_back(r.job);
            self.queue_peak = self.queue_peak.max(self.queue.len());
        }
    }

    /// Straggler mitigation: a gang observing ≥ N× its modeled step cost
    /// is checkpoint-migrated off the slow node — but only when enough
    /// healthy ranks are actually free to take it (otherwise migrating
    /// just parks the job behind the same stragglers).
    fn mitigate_stragglers(&mut self) {
        if self.fault_model.is_none() {
            return;
        }
        let slow_nodes = self.slow_nodes();
        if slow_nodes.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.running.len() {
            let r = &self.running[i];
            let movable = r.status == SliceStatus::Ran
                && !r.doomed
                && r.slow >= self.cfg.straggler_migrate_factor
                && r.job.migrations < self.cfg.max_migrations
                && self.pool.free_outside(&slow_nodes) >= r.job.ranks_needed;
            if !movable {
                i += 1;
                continue;
            }
            let mut r = self.running.swap_remove(i);
            match r.job.migrate() {
                Ok(()) => {
                    self.straggler_migrations += 1;
                    counter_add("service.straggler_migrations", 1);
                    self.events.record(&Event {
                        job: Some(r.job.id),
                        class: Some(r.job.spec.priority),
                        step: Some(r.job.clock.step),
                        detail: format!("observed {:.1}x modeled step cost", r.slow),
                        ..self.event(EventKind::Migrate)
                    });
                    self.pool.release(r.lease);
                    r.job.queued_at = Instant::now();
                    self.queue.push_back(r.job);
                    self.queue_peak = self.queue_peak.max(self.queue.len());
                }
                Err(why) => {
                    self.pool.release(r.lease);
                    self.finish(r.job, JobOutcome::Failed(format!("migrate: {why}")));
                }
            }
        }
    }

    fn retire(&mut self) {
        let mut i = 0;
        while i < self.running.len() {
            match &self.running[i].status {
                SliceStatus::Ran => i += 1,
                SliceStatus::Finished => {
                    let r = self.running.swap_remove(i);
                    self.pool.release(r.lease);
                    self.finish(r.job, JobOutcome::Completed);
                }
                SliceStatus::Failed(why) => {
                    let why = why.clone();
                    let r = self.running.swap_remove(i);
                    self.pool.release(r.lease);
                    self.finish(r.job, JobOutcome::Failed(why));
                }
            }
        }
    }

    fn finish(&mut self, job: Job, outcome: JobOutcome) {
        match &outcome {
            JobOutcome::Completed => counter_add("service.completed", 1),
            JobOutcome::Failed(_) => counter_add("service.failed", 1),
            JobOutcome::Quarantined(_) => {
                self.quarantined += 1;
                counter_add("service.quarantined", 1);
            }
        }
        job.flush_telemetry();
        let latency_s = job.submitted_at.elapsed().as_secs_f64();
        let deadline_met = job.spec.deadline_s.map(|d| latency_s <= d);
        let (kind, detail) = match &outcome {
            JobOutcome::Completed => (EventKind::Complete, String::new()),
            JobOutcome::Failed(why) => (EventKind::Fail, why.clone()),
            JobOutcome::Quarantined(why) => (EventKind::Quarantine, why.clone()),
        };
        self.events.record(&Event {
            job: Some(job.id),
            class: Some(job.spec.priority),
            step: Some(job.clock.step),
            latency_s: Some(latency_s),
            deadline_s: job.spec.deadline_s,
            detail,
            ..self.event(kind)
        });
        let steps = job.memory.snapshot();
        self.records.push(JobRecord {
            id: job.id,
            scenario: job.spec.scenario,
            network: job.spec.network,
            priority: job.spec.priority,
            resolution: job.spec.resolution,
            nodes: job.spec.nodes,
            ranks: job.ranks_needed,
            steps_done: job.clock.step,
            steps_requested: job.spec.steps,
            outcome,
            preemptions: job.preemptions,
            recoveries: job.recoveries,
            migrations: job.migrations,
            latency_s,
            deadline_met,
            ckpt_every: job.ckpt_every,
            final_digest: job.state_digest(),
            sim_us: job.sim_us,
            zones: job.zones(),
            step_records: steps.len() as u64,
        });
    }

    /// The service-level summary (jobs/hour, latency percentiles, rank
    /// utilization, chaos counters, and every terminal job record).
    pub fn report(&self) -> ServiceReport {
        let wall_s = self.started_at.elapsed().as_secs_f64();
        let mut latencies: Vec<f64> = self
            .records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Completed))
            .map(|r| r.latency_s)
            .collect();
        sort_total(&mut latencies);
        let completed = latencies.len();
        let failed = self
            .records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Failed(_)))
            .count();
        let utilization = if wall_s > 0.0 && self.pool.total() > 0 {
            self.leased_rank_seconds / (wall_s * self.pool.total() as f64)
        } else {
            0.0
        };
        let deadlined: Vec<bool> = self.records.iter().filter_map(|r| r.deadline_met).collect();
        let deadline_hit_rate = (!deadlined.is_empty())
            .then(|| deadlined.iter().filter(|&&m| m).count() as f64 / deadlined.len() as f64);
        let queue_wait_by_class = [
            PriorityClass::Batch,
            PriorityClass::Normal,
            PriorityClass::High,
        ]
        .iter()
        .filter_map(|&class| {
            let mut waits: Vec<f64> = self
                .queue_waits
                .iter()
                .filter(|(c, _)| *c == class)
                .map(|&(_, w)| w)
                .collect();
            if waits.is_empty() {
                return None;
            }
            sort_total(&mut waits);
            Some(ClassQueueWait {
                class,
                samples: waits.len(),
                p50_s: percentile(&waits, 0.50),
                p99_s: percentile(&waits, 0.99),
            })
        })
        .collect();
        ServiceReport {
            wall_s,
            submitted: self.submitted,
            rejected: self.rejected,
            completed,
            failed,
            quarantined: self.quarantined,
            preemptions: self.preemptions,
            node_failures: self.node_failures,
            lease_revocations: self.lease_revocations,
            recoveries: self.recoveries,
            straggler_migrations: self.straggler_migrations,
            queue_depth: self.queue.len(),
            queue_peak: self.queue_peak,
            queue_bound: self.cfg.queue_bound,
            running: self.running.len(),
            total_ranks: self.pool.total(),
            ranks_in_service: self.pool.in_service(),
            rank_utilization: utilization,
            jobs_per_hour: if wall_s > 0.0 {
                completed as f64 * 3600.0 / wall_s
            } else {
                0.0
            },
            latency_p50_s: percentile(&latencies, 0.50),
            latency_p99_s: percentile(&latencies, 0.99),
            deadline_hit_rate,
            queue_wait_by_class,
            mttr_s: self.mttr_series.clone(),
            jobs: self.records.clone(),
        }
    }

    /// Surface any deferred event-sink IO error (e.g. the JSONL stream
    /// hit a full disk mid-run).
    pub fn flush_events(&self) -> std::io::Result<()> {
        self.events.flush()
    }
}

/// Total-order ascending sort for latency samples. `total_cmp` (not
/// `partial_cmp().unwrap()`) so a NaN — e.g. from a poisoned wall-clock
/// reading — sorts to the end instead of panicking the report path.
fn sort_total(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sort_survives_nan() {
        // Regression: the report path used partial_cmp().unwrap(), which
        // panics the whole service summary on a single NaN sample.
        let mut v = vec![3.0, f64::NAN, 1.0, 2.0, f64::NAN];
        sort_total(&mut v);
        assert_eq!(&v[..3], &[1.0, 2.0, 3.0]);
        assert!(v[3].is_nan() && v[4].is_nan(), "NaNs sort last: {v:?}");
        // Percentiles over the finite prefix stay sane.
        assert_eq!(percentile(&v[..3], 0.50), 2.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
