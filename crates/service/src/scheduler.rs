//! The multi-tenant scheduler: bounded admission, weighted fair share,
//! gang placement on the rank pool, and checkpoint-based preemption.
//!
//! One [`Service::tick`] is a scheduling quantum:
//!
//! 1. **Account** rank-seconds leased since the last tick (utilization).
//! 2. **Place** waiting jobs in fair-share order (lowest virtual time
//!    first; class weight, then submit order break ties). A job that
//!    cannot fit is skipped — but only [`ServiceConfig::bypass_limit`]
//!    times: after that the queue head *reserves* the pool (no later job
//!    may jump it), which bounds waiting time and kills starvation.
//! 3. **Preempt** when the best waiting job outranks (strictly) the
//!    weakest running job and the pool cannot fit it: victims are
//!    checkpointed via [`exastro_resilience::CheckpointManager`],
//!    evicted, and requeued; the freed ranks go to the high job. A job
//!    is preempted at most [`ServiceConfig::max_preemptions`] times,
//!    then becomes immune (no preemption livelock).
//! 4. **Run** every placed job one slice (a few steps) concurrently on
//!    the worker pool; a resumed job restores from its newest intact
//!    checkpoint first — generally onto *different* ranks, which is safe
//!    because restarts are bit-exact.
//! 5. **Retire** finished and failed jobs (release ranks, final record).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Instant;

use exastro_machine::{sedov_workload, Machine, RankLease, RankPool};
use exastro_parallel::par_each_mut;
use exastro_resilience::interval::{suggest_cadence_steps, JobProfile};
use exastro_telemetry::{counter_add, Telemetry};

use crate::job::{Job, SliceStatus};
use crate::report::{JobOutcome, JobRecord, ServiceReport};
use crate::spec::{JobId, JobSpec, SubmitError};

/// Service knobs. Defaults give a one-node pool with a small queue —
/// the shape the examples and tests use; production sizing scales
/// `nodes` and `queue_bound` up.
pub struct ServiceConfig {
    /// The modeled machine supplying ranks and checkpoint pricing.
    pub machine: Machine,
    /// Nodes in the rank pool (`nodes × gpus_per_node` ranks).
    pub nodes: usize,
    /// Admission queue bound; submits beyond it get backpressure.
    pub queue_bound: usize,
    /// Steps per scheduling quantum for each running job.
    pub slice_steps: u64,
    /// Times one job may be preempted before it becomes immune.
    pub max_preemptions: u32,
    /// Times a queued job may be overtaken before it reserves the pool.
    pub bypass_limit: u32,
    /// Directory for per-job `job-NNNN.steps.jsonl` streams (`None`
    /// keeps telemetry in memory only).
    pub jsonl_dir: Option<PathBuf>,
    /// Root directory for per-job checkpoint trees.
    pub ckpt_root: PathBuf,
    /// Per-node MTBF assumed by the Young/Daly cadence, seconds.
    pub per_node_mtbf_s: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            machine: Machine::summit(),
            nodes: 1,
            queue_bound: 64,
            slice_steps: 2,
            max_preemptions: 2,
            bypass_limit: 8,
            jsonl_dir: None,
            ckpt_root: std::env::temp_dir().join(format!("exastro_service_{}", std::process::id())),
            per_node_mtbf_s: 10.0 * 365.0 * 86_400.0,
        }
    }
}

struct Running {
    job: Job,
    lease: RankLease,
    status: SliceStatus,
}

/// The long-running job service.
pub struct Service {
    cfg: ServiceConfig,
    pool: RankPool,
    queue: VecDeque<Job>,
    running: Vec<Running>,
    records: Vec<JobRecord>,
    next_id: u64,
    submit_seq: u64,
    started_at: Instant,
    last_tick: Instant,
    /// Σ (tick wall seconds × ranks leased) — utilization numerator.
    leased_rank_seconds: f64,
    queue_peak: usize,
    submitted: u64,
    rejected: u64,
    preemptions: u64,
}

impl Service {
    /// A service over `cfg`'s machine and knobs.
    pub fn new(cfg: ServiceConfig) -> Service {
        let pool = RankPool::new(&cfg.machine, cfg.nodes);
        let now = Instant::now();
        Service {
            pool,
            cfg,
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            next_id: 0,
            submit_seq: 0,
            started_at: now,
            last_tick: now,
            leased_rank_seconds: 0.0,
            queue_peak: 0,
            submitted: 0,
            rejected: 0,
            preemptions: 0,
        }
    }

    /// Total ranks in the pool.
    pub fn total_ranks(&self) -> usize {
        self.pool.total()
    }

    /// Jobs waiting for placement.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently on the machine.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Submit a job. `Err(QueueFull)` is backpressure — the spec was not
    /// admitted and the caller should retry later; `Err(InvalidSpec)`
    /// means the spec can never run here.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.submitted += 1;
        counter_add("service.submitted", 1);
        if let Err(why) = spec.validate() {
            self.rejected += 1;
            counter_add("service.rejected", 1);
            return Err(SubmitError::InvalidSpec(why));
        }
        let ranks_needed = spec.nodes * self.pool.gpus_per_node();
        if ranks_needed > self.pool.total() {
            self.rejected += 1;
            counter_add("service.rejected", 1);
            return Err(SubmitError::InvalidSpec(format!(
                "job wants {ranks_needed} ranks but the pool has {}",
                self.pool.total()
            )));
        }
        if self.queue.len() >= self.cfg.queue_bound {
            self.rejected += 1;
            counter_add("service.rejected", 1);
            return Err(SubmitError::QueueFull {
                bound: self.cfg.queue_bound,
            });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        let seq = self.submit_seq;
        self.submit_seq += 1;
        if let Some(dir) = &self.cfg.jsonl_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| SubmitError::InvalidSpec(format!("jsonl dir: {e}")))?;
        }
        let mut job = Job::build(
            id,
            spec,
            ranks_needed,
            seq,
            &self.cfg.ckpt_root,
            self.cfg.jsonl_dir.as_deref(),
        )
        .map_err(SubmitError::InvalidSpec)?;

        // Price one step of this job on the modeled machine (the same
        // workload builder the weak-scaling figures use) and derive the
        // Young/Daly checkpoint cadence from it unless the tenant set one.
        let wl = sedov_workload(
            &self.cfg.machine,
            job.spec.nodes,
            job.spec.resolution,
            12,
            4,
        );
        job.step_sim_us = self.cfg.machine.simulate_step(&wl).total_us;
        job.ckpt_every = match job.spec.ckpt_every {
            Some(every) => every,
            None => {
                let profile = JobProfile {
                    nodes: job.spec.nodes,
                    checkpoint_bytes: job.checkpoint_bytes(),
                    per_node_mtbf_s: self.cfg.per_node_mtbf_s,
                    step_wall_s: job.step_sim_us * 1e-6,
                };
                suggest_cadence_steps(&self.cfg.machine, &profile)
            }
        };
        counter_add("service.admitted", 1);
        self.queue.push_back(job);
        self.queue_peak = self.queue_peak.max(self.queue.len());
        Ok(id)
    }

    /// Fair-share ordering key for a waiting job: lowest virtual time
    /// first; heavier class, then earlier submission break ties.
    fn share_key(job: &Job) -> (f64, f64, u64) {
        (job.vtime, -job.spec.priority.weight(), job.submit_seq)
    }

    /// One scheduling quantum. Returns `false` once the service is idle
    /// (nothing queued, nothing running).
    pub fn tick(&mut self) -> bool {
        // 1. Utilization accounting for the interval just elapsed.
        let now = Instant::now();
        let dt = now.duration_since(self.last_tick).as_secs_f64();
        self.last_tick = now;
        self.leased_rank_seconds += dt * self.pool.leased() as f64;

        self.place_queued();
        self.preempt_for_priority();
        self.run_slices();
        self.retire();

        Telemetry::record_hist("service/queue_depth", self.queue.len() as f64);
        Telemetry::record_hist("service/running", self.running.len() as f64);
        !self.queue.is_empty() || !self.running.is_empty()
    }

    /// Drive ticks until idle or `max_ticks`; returns true if idle.
    pub fn run_until_idle(&mut self, max_ticks: usize) -> bool {
        for _ in 0..max_ticks {
            if !self.tick() {
                return true;
            }
        }
        !self.tick()
    }

    fn place_queued(&mut self) {
        // Sort a view of queue indices by fair-share key.
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = Self::share_key(&self.queue[a]);
            let kb = Self::share_key(&self.queue[b]);
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut placed: Vec<(usize, RankLease)> = Vec::new();
        let mut blocked_reserver = false;
        for &qi in &order {
            if blocked_reserver {
                // A starving job ahead of us has reserved the pool.
                continue;
            }
            let need = self.queue[qi].ranks_needed;
            if let Some(lease) = self.pool.try_lease(need) {
                placed.push((qi, lease));
            } else {
                let job = &mut self.queue[qi];
                job.bypassed += 1;
                if job.bypassed > self.cfg.bypass_limit {
                    // Starvation guard: nobody may overtake this job
                    // anymore until it places.
                    blocked_reserver = true;
                }
            }
        }
        // Pull the placed jobs out of the queue (descending index so the
        // remaining indices stay valid; queue order is preserved).
        placed.sort_by_key(|p| std::cmp::Reverse(p.0));
        for (qi, lease) in placed {
            let job = self.queue.remove(qi).expect("placed index in queue");
            self.start(job, lease);
        }
    }

    /// When the best waiting job strictly outranks the weakest running
    /// job and cannot fit, checkpoint victims off the machine until it
    /// fits (or no eligible victims remain).
    fn preempt_for_priority(&mut self) {
        loop {
            // Highest-class waiting job that is not placeable right now.
            let Some(qi) = (0..self.queue.len()).max_by_key(|&i| {
                let j = &self.queue[i];
                (j.spec.priority, std::cmp::Reverse(j.submit_seq))
            }) else {
                return;
            };
            let need = self.queue[qi].ranks_needed;
            let class = self.queue[qi].spec.priority;
            if self.pool.available() >= need {
                // Fits without violence; the next place_queued gets it.
                return;
            }
            // Victims: strictly lower class, not preemption-immune;
            // weakest class first, then youngest (least sunk work).
            let mut victims: Vec<usize> = (0..self.running.len())
                .filter(|&i| {
                    let j = &self.running[i].job;
                    j.spec.priority < class && j.preemptions < self.cfg.max_preemptions
                })
                .collect();
            victims.sort_by_key(|&i| {
                let j = &self.running[i].job;
                (j.spec.priority, std::cmp::Reverse(j.submit_seq))
            });
            let mut freed = self.pool.available();
            let mut chosen: Vec<usize> = Vec::new();
            for &vi in &victims {
                if freed >= need {
                    break;
                }
                freed += self.running[vi].lease.len();
                chosen.push(vi);
            }
            if freed < need || chosen.is_empty() {
                return; // not enough preemptible capacity — wait it out
            }
            // Evict chosen victims (checkpoint → release → requeue),
            // highest index first so removals do not shift the others.
            chosen.sort_unstable_by(|a, b| b.cmp(a));
            for vi in chosen {
                let mut r = self.running.swap_remove(vi);
                match r.job.preempt() {
                    Ok(()) => {
                        self.preemptions += 1;
                        counter_add("service.preempted", 1);
                        self.pool.release(r.lease);
                        self.queue.push_back(r.job);
                        self.queue_peak = self.queue_peak.max(self.queue.len());
                    }
                    Err(why) => {
                        // A job we cannot checkpoint cannot be moved;
                        // fail it rather than lose its state silently.
                        self.pool.release(r.lease);
                        self.finish(r.job, JobOutcome::Failed(format!("preempt: {why}")));
                    }
                }
            }
            // Give the high job its ranks immediately.
            if let Some(lease) = self.pool.try_lease(need) {
                let job = self.queue.remove(qi).expect("high job in queue");
                self.start(job, lease);
            }
        }
    }

    fn start(&mut self, mut job: Job, lease: RankLease) {
        if job.is_evicted() {
            if let Err(why) = job.resume() {
                self.pool.release(lease);
                self.finish(job, JobOutcome::Failed(format!("resume: {why}")));
                return;
            }
        }
        job.bypassed = 0;
        self.running.push(Running {
            job,
            lease,
            status: SliceStatus::Ran,
        });
    }

    fn run_slices(&mut self) {
        if self.running.is_empty() {
            return;
        }
        let quantum = self.cfg.slice_steps.max(1);
        // Concurrent slices on the worker pool: one task per running job.
        par_each_mut(&mut self.running, |_, r| {
            r.status = r.job.run_slice(quantum);
        });
        // Fair-share accounting (serial: needs &mut self bookkeeping).
        for r in &mut self.running {
            if r.status != SliceStatus::Ran {
                continue;
            }
            let w = r.job.spec.priority.weight();
            r.job.vtime += quantum as f64 * r.job.step_sim_us / w;
        }
    }

    fn retire(&mut self) {
        let mut i = 0;
        while i < self.running.len() {
            match &self.running[i].status {
                SliceStatus::Ran => i += 1,
                SliceStatus::Finished => {
                    let r = self.running.swap_remove(i);
                    self.pool.release(r.lease);
                    self.finish(r.job, JobOutcome::Completed);
                }
                SliceStatus::Failed(why) => {
                    let why = why.clone();
                    let r = self.running.swap_remove(i);
                    self.pool.release(r.lease);
                    self.finish(r.job, JobOutcome::Failed(why));
                }
            }
        }
    }

    fn finish(&mut self, job: Job, outcome: JobOutcome) {
        match &outcome {
            JobOutcome::Completed => counter_add("service.completed", 1),
            JobOutcome::Failed(_) => counter_add("service.failed", 1),
        }
        job.flush_telemetry();
        let latency_s = job.submitted_at.elapsed().as_secs_f64();
        let deadline_met = job.spec.deadline_s.map(|d| latency_s <= d);
        let steps = job.memory.snapshot();
        self.records.push(JobRecord {
            id: job.id,
            scenario: job.spec.scenario,
            network: job.spec.network,
            priority: job.spec.priority,
            resolution: job.spec.resolution,
            nodes: job.spec.nodes,
            ranks: job.ranks_needed,
            steps_done: job.clock.step,
            steps_requested: job.spec.steps,
            outcome,
            preemptions: job.preemptions,
            latency_s,
            deadline_met,
            ckpt_every: job.ckpt_every,
            final_digest: job.state_digest(),
            sim_us: job.sim_us,
            zones: job.zones(),
            step_records: steps.len() as u64,
        });
    }

    /// The service-level summary (jobs/hour, latency percentiles, rank
    /// utilization, and every terminal job record).
    pub fn report(&self) -> ServiceReport {
        let wall_s = self.started_at.elapsed().as_secs_f64();
        let mut latencies: Vec<f64> = self
            .records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Completed))
            .map(|r| r.latency_s)
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let completed = latencies.len();
        let failed = self
            .records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Failed(_)))
            .count();
        let utilization = if wall_s > 0.0 && self.pool.total() > 0 {
            self.leased_rank_seconds / (wall_s * self.pool.total() as f64)
        } else {
            0.0
        };
        ServiceReport {
            wall_s,
            submitted: self.submitted,
            rejected: self.rejected,
            completed,
            failed,
            preemptions: self.preemptions,
            queue_depth: self.queue.len(),
            queue_peak: self.queue_peak,
            queue_bound: self.cfg.queue_bound,
            running: self.running.len(),
            total_ranks: self.pool.total(),
            rank_utilization: utilization,
            jobs_per_hour: if wall_s > 0.0 {
                completed as f64 * 3600.0 / wall_s
            } else {
                0.0
            },
            latency_p50_s: percentile(&latencies, 0.50),
            latency_p99_s: percentile(&latencies, 0.99),
            jobs: self.records.clone(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}
