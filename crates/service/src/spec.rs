//! Job specifications: what a tenant submits to the service.

use exastro_microphysics::{Aprox13, BurnFaultConfig, CBurn2, Iso7, Network, TripleAlpha};

/// Service-assigned job identity (dense, monotonically increasing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{:04}", self.0)
    }
}

/// The four simulation scenarios the service knows how to run — the
/// paper's problem suite (§IV): a Sedov-style blast, the MAESTROeX
/// reacting bubble, the white-dwarf collision, and an X-ray-burst
/// helium-flame column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Compressible Sedov-style blast wave (dimensionless, Castro).
    SedovBlast,
    /// Low-Mach reacting bubble in a white-dwarf atmosphere (MAESTROeX).
    ReactingBubble,
    /// Head-on white-dwarf collision (Castro, self-gravity + burning).
    WdCollision,
    /// X-ray-burst helium layer igniting at its base (Castro + burning).
    XrbFlame,
}

impl Scenario {
    /// Stable lowercase name (used in reports and JSONL paths).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::SedovBlast => "sedov_blast",
            Scenario::ReactingBubble => "reacting_bubble",
            Scenario::WdCollision => "wd_collision",
            Scenario::XrbFlame => "xrb_flame",
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which reaction network the job burns with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetChoice {
    /// 2-isotope carbon burning (`C12 → Mg24`).
    CBurn2,
    /// 3-isotope helium burning (`3 He4 → C12`, `C12(α,γ)O16`).
    TripleAlpha,
    /// 7-isotope network through silicon burning.
    Iso7,
    /// 13-isotope α-chain network.
    Aprox13,
}

impl NetChoice {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            NetChoice::CBurn2 => "cburn2",
            NetChoice::TripleAlpha => "triple_alpha",
            NetChoice::Iso7 => "iso7",
            NetChoice::Aprox13 => "aprox13",
        }
    }

    /// Instantiate the network.
    pub fn build(&self) -> Box<dyn Network + Send + Sync> {
        match self {
            NetChoice::CBurn2 => Box::new(CBurn2::new()),
            NetChoice::TripleAlpha => Box::new(TripleAlpha::new()),
            NetChoice::Iso7 => Box::new(Iso7::new()),
            NetChoice::Aprox13 => Box::new(Aprox13::new()),
        }
    }
}

impl std::fmt::Display for NetChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deadline/priority class. Higher classes get a larger fair-share weight
/// and may preempt strictly lower classes when the rank pool is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Throughput work: runs in the gaps, never preempts.
    Batch,
    /// The default class.
    Normal,
    /// Deadline work: may preempt `Batch`/`Normal` victims.
    High,
}

impl PriorityClass {
    /// Fair-share weight (share of the machine under contention).
    pub fn weight(&self) -> f64 {
        match self {
            PriorityClass::Batch => 1.0,
            PriorityClass::Normal => 4.0,
            PriorityClass::High => 16.0,
        }
    }

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            PriorityClass::Batch => "batch",
            PriorityClass::Normal => "normal",
            PriorityClass::High => "high",
        }
    }
}

impl std::fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One simulation job, as submitted by a tenant.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Which problem to run.
    pub scenario: Scenario,
    /// Which reaction network to burn with (must carry the species the
    /// scenario's initial model needs — validated at submit).
    pub network: NetChoice,
    /// Zones per side of the (cubic) domain.
    pub resolution: i32,
    /// Nodes requested; the job leases `nodes × gpus_per_node` ranks.
    pub nodes: usize,
    /// Steps to advance before the job is complete.
    pub steps: u64,
    /// Deadline/priority class.
    pub priority: PriorityClass,
    /// Soft latency deadline, seconds from submit; reported (met or not)
    /// in the job record, never enforced by killing.
    pub deadline_s: Option<f64>,
    /// Checkpoint cadence in steps. `None` (the default) lets the service
    /// pick the Young/Daly optimum for this job on its machine
    /// ([`exastro_resilience::interval::suggest_cadence_steps`]).
    pub ckpt_every: Option<u64>,
    /// Deterministic burn-fault injection (tests and chaos drills). With
    /// `rungs_to_fail` beyond the retry ladder the job fails
    /// unrecoverably — the service must contain the blast radius.
    pub burn_faults: Option<BurnFaultConfig>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            scenario: Scenario::SedovBlast,
            network: NetChoice::CBurn2,
            resolution: 12,
            nodes: 1,
            steps: 4,
            priority: PriorityClass::Normal,
            deadline_s: None,
            ckpt_every: None,
            burn_faults: None,
        }
    }
}

impl JobSpec {
    /// Scenario-compatibility and sanity checks, run at submit time.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.resolution < 4 {
            return Err(format!("resolution {} < 4", self.resolution));
        }
        if self.steps == 0 {
            return Err("steps must be >= 1".into());
        }
        if self.nodes == 0 {
            return Err("nodes must be >= 1".into());
        }
        if let Some(every) = self.ckpt_every {
            if every == 0 {
                return Err("ckpt_every must be >= 1 when set".into());
            }
        }
        let net = self.network.build();
        let has = |name: &str| net.species().iter().any(|s| s.name == name);
        match self.scenario {
            Scenario::WdCollision if !has("c12") => {
                Err(format!("wd_collision needs c12; {} lacks it", self.network))
            }
            Scenario::XrbFlame if !has("he4") => {
                Err(format!("xrb_flame needs he4; {} lacks it", self.network))
            }
            _ => Ok(()),
        }
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is full — backpressure; retry later.
    QueueFull {
        /// The configured queue bound the submission ran into.
        bound: usize,
    },
    /// The spec can never run (bad sizes, incompatible network, or a rank
    /// request larger than the whole pool).
    InvalidSpec(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { bound } => {
                write!(f, "admission queue full (bound {bound})")
            }
            SubmitError::InvalidSpec(why) => write!(f, "invalid job spec: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_catches_incompatible_networks() {
        let ok = JobSpec::default();
        assert!(ok.validate().is_ok());
        let bad = JobSpec {
            scenario: Scenario::XrbFlame,
            network: NetChoice::CBurn2, // no he4
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let wd = JobSpec {
            scenario: Scenario::WdCollision,
            network: NetChoice::TripleAlpha, // has c12
            ..Default::default()
        };
        assert!(wd.validate().is_ok());
        assert!(JobSpec {
            steps: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(JobSpec {
            ckpt_every: Some(0),
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn priority_classes_order_and_weight() {
        assert!(PriorityClass::High > PriorityClass::Normal);
        assert!(PriorityClass::Normal > PriorityClass::Batch);
        assert!(PriorityClass::High.weight() > PriorityClass::Normal.weight());
    }
}
