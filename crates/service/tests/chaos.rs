//! Chaos tests: the service under a cluster that fails underneath it.
//!
//! The acceptance bar (ISSUE 8): a run with ≥3 injected node crashes and
//! ≥1 straggler completes every non-quarantined job with a final digest
//! bit-identical to an uninterrupted run; quarantine is a circuit
//! breaker with a structured reason, never a hang; and the fairness
//! invariants of the perfect-cluster scheduler survive random failure
//! schedules.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use exastro_machine::NodeFaultConfig;
use exastro_service::{
    JobOutcome, JobSpec, NetChoice, PriorityClass, Scenario, Service, ServiceConfig, SubmitError,
};

fn base_cfg(tag: &str, nodes: usize) -> ServiceConfig {
    ServiceConfig {
        nodes,
        ckpt_root: std::env::temp_dir().join(format!("exastro_chaos_{tag}_{}", std::process::id())),
        ..Default::default()
    }
}

/// Run one job alone on an uncontended, fault-free service and return its
/// final digest — the ground truth every chaos-ridden run must reproduce.
fn solo_digest(tag: &str, spec: JobSpec) -> u32 {
    let mut svc = Service::new(base_cfg(tag, spec.nodes));
    let id = svc.submit(spec).expect("solo submit");
    assert!(svc.run_until_idle(10_000), "solo run must drain");
    let report = svc.report();
    let rec = report.jobs.iter().find(|r| r.id == id).expect("record");
    assert_eq!(rec.outcome, JobOutcome::Completed, "solo run must complete");
    rec.final_digest
}

/// Process-wide digest cache for the proptest (the solo ground truth for
/// a given spec shape never changes).
fn cached_solo_digest(scenario_idx: usize, steps: u64) -> u32 {
    static CACHE: OnceLock<Mutex<HashMap<(usize, u64), u32>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(d) = cache.lock().unwrap().get(&(scenario_idx, steps)) {
        return *d;
    }
    let spec = JobSpec {
        scenario: [Scenario::SedovBlast, Scenario::ReactingBubble][scenario_idx],
        resolution: 8,
        steps,
        ..Default::default()
    };
    let d = solo_digest(&format!("cache_{scenario_idx}_{steps}"), spec);
    cache.lock().unwrap().insert((scenario_idx, steps), d);
    d
}

/// The tentpole acceptance test: a mixed tenant population on a 4-node
/// pool while the fault model kills nodes (with repair) and throws a
/// straggler wave. Every job must complete with the solo digest; the run
/// must actually have seen ≥3 node crashes, lease revocations with
/// checkpoint recoveries, and ≥1 straggler migration.
#[test]
fn chaos_recovery_is_bit_exact() {
    let tenants = [
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 12,
            steps: 10,
            priority: PriorityClass::Batch,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::XrbFlame,
            network: NetChoice::TripleAlpha,
            resolution: 8,
            steps: 8,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::ReactingBubble,
            resolution: 12,
            steps: 6,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 8,
            steps: 12,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 12,
            steps: 6,
            priority: PriorityClass::High,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::ReactingBubble,
            resolution: 8,
            steps: 8,
            priority: PriorityClass::Batch,
            ..Default::default()
        },
    ];
    let want: Vec<u32> = tenants
        .iter()
        .enumerate()
        .map(|(i, s)| solo_digest(&format!("solo{i}"), s.clone()))
        .collect();

    // Five nodes for six 1-node gangs: enough headroom that a straggler
    // migration can actually find free healthy ranks to move into.
    let mut cfg = base_cfg("storm", 5);
    cfg.quarantine_limit = 10; // generous: this run must *complete*, the
                               // circuit breaker has its own test below
    cfg.idle_tick_sim_us = 2_000.0; // keep backoff windows on the same
                                    // timescale as the ~1.8 ms steps
    cfg.faults = Some(NodeFaultConfig {
        seed: 0xC4A05,
        node_mtbf_s: 0.025,
        repair_s: Some(0.020),
        straggler_mtbf_s: 0.030,
        straggler_factor: 4.0,
        straggler_duration_s: 0.050,
        ..Default::default()
    });
    let mut svc = Service::new(cfg);
    let ids: Vec<_> = tenants
        .iter()
        .map(|s| svc.submit(s.clone()).expect("tenant admits"))
        .collect();
    assert!(
        svc.run_until_idle(100_000),
        "chaos run must drain, not wedge"
    );

    let report = svc.report();
    assert!(
        report.node_failures >= 3,
        "the storm must inject >=3 node crashes, got {}",
        report.node_failures
    );
    assert!(
        report.lease_revocations >= 1 && report.recoveries >= 1,
        "crashes must revoke leases and recover from checkpoint \
         (revocations {}, recoveries {})",
        report.lease_revocations,
        report.recoveries
    );
    assert!(
        report.straggler_migrations >= 1,
        "the straggler wave must force >=1 checkpoint-migration, got {}",
        report.straggler_migrations
    );
    for (id, want) in ids.iter().zip(&want) {
        let rec = report.jobs.iter().find(|r| r.id == *id).expect("record");
        match &rec.outcome {
            JobOutcome::Completed => {
                assert_eq!(rec.steps_done, rec.steps_requested, "{id:?}");
                assert_eq!(
                    rec.final_digest, *want,
                    "{id:?}: recovery must be bit-identical to the \
                     uninterrupted run"
                );
            }
            JobOutcome::Quarantined(reason) => {
                assert!(!reason.is_empty(), "{id:?}: quarantine needs a reason");
            }
            JobOutcome::Failed(why) => {
                panic!("{id:?} must complete or quarantine under chaos, not fail: {why}")
            }
        }
    }
    assert!(
        report.completed >= 5,
        "with repair enabled nearly all jobs must finish, got {} of 6",
        report.completed
    );
}

/// The circuit breaker: on a machine whose single node dies faster than
/// any job can finish (and always comes right back, so capacity is never
/// the blocker), a job burns its recovery budget and is quarantined with
/// a structured reason instead of cycling through the machine forever.
#[test]
fn poison_job_is_quarantined_not_looped() {
    let mut cfg = base_cfg("poison", 1);
    cfg.quarantine_limit = 3;
    cfg.recovery_backoff_base = 1;
    cfg.recovery_backoff_max = 2;
    cfg.idle_tick_sim_us = 1_000.0;
    cfg.faults = Some(NodeFaultConfig {
        seed: 99,
        node_mtbf_s: 0.002, // dies roughly every slice
        repair_s: Some(0.0005),
        ..Default::default()
    });
    let mut svc = Service::new(cfg);
    let id = svc
        .submit(JobSpec {
            resolution: 8,
            steps: 40,
            ..Default::default()
        })
        .unwrap();
    assert!(
        svc.run_until_idle(100_000),
        "the breaker must trip and the service go idle, not spin forever"
    );
    let report = svc.report();
    let rec = report.jobs.iter().find(|r| r.id == id).expect("record");
    match &rec.outcome {
        JobOutcome::Quarantined(reason) => {
            assert!(
                reason.contains("recovery budget") || reason.contains("capacity"),
                "reason must be structured, got: {reason}"
            );
        }
        other => panic!("poison job must be quarantined, got {other:?}"),
    }
    assert_eq!(report.quarantined, 1);
    assert!(report.recoveries >= 1 || report.node_failures >= 1);
}

/// Graceful degradation: when the dead node never comes back and the
/// only gang no longer fits the surviving machine, the job re-queues and
/// is eventually quarantined for capacity — the scheduler itself never
/// wedges (run_until_idle returns, the queue drains).
#[test]
fn dead_capacity_quarantines_instead_of_wedging() {
    let mut cfg = base_cfg("shrink", 2);
    cfg.capacity_patience = 30;
    cfg.idle_tick_sim_us = 5_000.0;
    cfg.faults = Some(NodeFaultConfig {
        seed: 7,
        node_mtbf_s: 0.004,
        repair_s: None, // dead is dead
        ..Default::default()
    });
    let mut svc = Service::new(cfg);
    // A 2-node gang: once either node dies it can never fit again.
    let big = svc
        .submit(JobSpec {
            resolution: 8,
            nodes: 2,
            steps: 200,
            ..Default::default()
        })
        .unwrap();
    assert!(svc.run_until_idle(100_000), "shrunken service must go idle");
    let report = svc.report();
    assert!(report.node_failures >= 1, "the pool must actually shrink");
    let rec = report.jobs.iter().find(|r| r.id == big).expect("record");
    match &rec.outcome {
        JobOutcome::Quarantined(reason) => {
            assert!(
                reason.contains("capacity") || reason.contains("recovery budget"),
                "unexpected reason: {reason}"
            );
        }
        JobOutcome::Completed => panic!("200 steps cannot finish before both nodes die"),
        JobOutcome::Failed(why) => panic!("must quarantine, not fail: {why}"),
    }
    assert!(
        report.ranks_in_service < report.total_ranks,
        "report must expose the shrunken pool"
    );
}

mod chaos_fairness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The PR 7 fairness/liveness invariants under random node-failure
        /// schedules: the queue bound holds, the scheduler never
        /// deadlocks, and every admitted job either completes bit-exactly
        /// (vs the fault-free solo ground truth) or is quarantined with a
        /// structured reason.
        #[test]
        fn every_job_completes_bit_exact_or_quarantines(
            seed in 0u64..1_000_000,
            mtbf_ms in 5u64..80,
            repairs in 0u64..2,
            scenarios in prop::collection::vec(0..2usize, 1..8),
            classes in prop::collection::vec(0..3usize, 1..8),
            steps in prop::collection::vec(1u64..4, 1..8),
        ) {
            let mut cfg = base_cfg(&format!("fair{seed}_{mtbf_ms}"), 2);
            cfg.queue_bound = 4;
            cfg.idle_tick_sim_us = 2_000.0;
            cfg.capacity_patience = 50;
            cfg.faults = Some(NodeFaultConfig {
                seed,
                node_mtbf_s: mtbf_ms as f64 * 1e-3,
                repair_s: (repairs == 1).then_some(0.01),
                straggler_mtbf_s: 0.05,
                straggler_factor: 3.0,
                straggler_duration_s: 0.02,
                ..Default::default()
            });
            let mut svc = Service::new(cfg);
            let mut admitted = Vec::new();
            let n = scenarios.len().min(classes.len()).min(steps.len());
            for i in 0..n {
                let spec = JobSpec {
                    scenario: [Scenario::SedovBlast, Scenario::ReactingBubble][scenarios[i]],
                    priority: [
                        PriorityClass::Batch,
                        PriorityClass::Normal,
                        PriorityClass::High,
                    ][classes[i]],
                    resolution: 8,
                    steps: steps[i],
                    ..Default::default()
                };
                match svc.submit(spec) {
                    Ok(id) => admitted.push((id, scenarios[i], steps[i])),
                    Err(SubmitError::QueueFull { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
                prop_assert!(svc.queue_depth() <= 4, "queue exceeded its bound");
                if i % 2 == 1 {
                    svc.tick();
                }
            }
            prop_assert!(
                svc.run_until_idle(50_000),
                "service deadlocked under the failure schedule"
            );
            let report = svc.report();
            // Every admitted job must reach a terminal state, and chaos
            // must never surface as a driver-level Failed outcome.
            prop_assert_eq!(
                report.completed + report.failed + report.quarantined,
                admitted.len()
            );
            prop_assert_eq!(report.failed, 0);
            for (id, scenario_idx, steps) in admitted {
                let rec = report.jobs.iter().find(|r| r.id == id);
                prop_assert!(rec.is_some(), "admitted job vanished");
                let rec = rec.unwrap();
                match &rec.outcome {
                    JobOutcome::Completed => {
                        prop_assert_eq!(rec.steps_done, rec.steps_requested);
                        // Digest must match the fault-free ground truth.
                        prop_assert_eq!(
                            rec.final_digest,
                            cached_solo_digest(scenario_idx, steps)
                        );
                    }
                    JobOutcome::Quarantined(reason) => {
                        prop_assert!(!reason.is_empty());
                    }
                    JobOutcome::Failed(why) => {
                        return Err(TestCaseError::fail(format!("job failed: {why}")));
                    }
                }
            }
        }
    }
}
