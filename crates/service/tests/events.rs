//! The cluster event log as the source of truth: a chaos run streams
//! `exastro.event.v1` events, and this suite proves the report's SLO
//! metrics — per-job recovery timeline, deadline hit rate, queue-latency
//! percentiles, MTTR series — can be reproduced *exactly* from the log
//! alone (same floats, same order), while the JSONL rendering stays
//! schema-valid line by line.

use std::sync::Arc;

use exastro_machine::NodeFaultConfig;
use exastro_service::{
    Event, EventKind, EventSink, JobSpec, JsonlEventSink, MemoryEventSink, PriorityClass, Scenario,
    Service, ServiceConfig,
};

/// Fan one event stream into both the in-memory log (reconciliation) and
/// the JSONL file (schema check) — the test-local analogue of
/// `exastro_telemetry::MultiSink`.
struct Tee(Arc<MemoryEventSink>, JsonlEventSink);

impl EventSink for Tee {
    fn record(&self, ev: &Event) {
        self.0.record(ev);
        self.1.record(ev);
    }
    fn flush(&self) -> std::io::Result<()> {
        self.1.flush()
    }
}

/// Nearest-rank percentile over an ascending sort — the report's rule,
/// reimplemented independently so the reconciliation is a real check.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[test]
fn report_slo_metrics_reproduce_exactly_from_the_event_log() {
    let dir = std::env::temp_dir().join(format!("exastro_events_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl_path = dir.join("events.jsonl");
    let memory = Arc::new(MemoryEventSink::new());
    let tee = Tee(
        memory.clone(),
        JsonlEventSink::create(&jsonl_path).expect("event log file"),
    );

    let mut cfg = ServiceConfig {
        nodes: 3,
        ckpt_root: dir.join("ckpt"),
        events: Some(Arc::new(tee)),
        quarantine_limit: 10,
        idle_tick_sim_us: 2_000.0,
        ..Default::default()
    };
    cfg.faults = Some(NodeFaultConfig {
        seed: 0xE7E47,
        node_mtbf_s: 0.006,
        repair_s: Some(0.004),
        ..Default::default()
    });
    let mut svc = Service::new(cfg);

    // Deadlined tenants on both sides of the SLO: an impossible 0-second
    // deadline (always missed) plus generous ones (met), so the hit rate
    // is a real fraction, not a degenerate 0 or 1.
    let specs = [
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 8,
            steps: 10,
            deadline_s: Some(0.0),
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 8,
            steps: 4,
            priority: PriorityClass::High,
            deadline_s: Some(3600.0),
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::ReactingBubble,
            resolution: 8,
            steps: 4,
            priority: PriorityClass::Batch,
            deadline_s: Some(3600.0),
            ..Default::default()
        },
    ];
    let ids: Vec<_> = specs
        .iter()
        .map(|s| svc.submit(s.clone()).expect("admit"))
        .collect();
    assert!(svc.run_until_idle(100_000), "chaos run must drain");
    svc.flush_events().expect("event log IO must be clean");
    let report = svc.report();
    let log = memory.snapshot();

    // --- Structural invariants of the stream itself. ---
    assert!(
        log.windows(2).all(|w| w[0].sim_us <= w[1].sim_us),
        "event timestamps must be nondecreasing"
    );
    for id in &ids {
        assert!(
            log.iter()
                .any(|e| e.kind == EventKind::Admit && e.job == Some(*id)),
            "{id:?} has no admit event"
        );
        let terminal = log
            .iter()
            .filter(|e| {
                e.job == Some(*id)
                    && matches!(
                        e.kind,
                        EventKind::Complete | EventKind::Fail | EventKind::Quarantine
                    )
            })
            .count();
        assert_eq!(terminal, 1, "{id:?} must have exactly one terminal event");
    }

    // --- Per-job recovery timeline: the record's recovery count is the
    // job's revoke-event count, and every recover event replays an entire
    // revoke -> (backoff) -> recover arc in order. ---
    let mut recoveries_seen = 0u64;
    for rec in &report.jobs {
        let revokes: Vec<&exastro_service::Event> = log
            .iter()
            .filter(|e| e.kind == EventKind::Revoke && e.job == Some(rec.id))
            .collect();
        assert_eq!(
            revokes.len() as u32,
            rec.recoveries,
            "{:?}: revoke events must equal the record's recovery count",
            rec.id
        );
        let recovers: Vec<&exastro_service::Event> = log
            .iter()
            .filter(|e| e.kind == EventKind::Recover && e.job == Some(rec.id))
            .collect();
        recoveries_seen += recovers.len() as u64;
        for (rv, rc) in revokes.iter().zip(&recovers) {
            assert!(
                rv.sim_us <= rc.sim_us,
                "{:?}: recovery precedes its revocation",
                rec.id
            );
            assert!(rv.lost_steps.is_some(), "revoke must price lost work");
            assert!(rc.mttr_s.is_some(), "recover must carry its MTTR");
        }
    }
    assert_eq!(
        recoveries_seen, report.recoveries,
        "recover events must equal the service recovery counter"
    );
    assert!(
        report.recoveries >= 1,
        "the chaos schedule must actually exercise recovery"
    );

    // --- MTTR series: bit-for-bit the recover events' mttr_s, in order. ---
    let log_mttr: Vec<f64> = log
        .iter()
        .filter(|e| e.kind == EventKind::Recover)
        .map(|e| e.mttr_s.expect("recover carries mttr_s"))
        .collect();
    assert_eq!(
        log_mttr, report.mttr_s,
        "MTTR series must reproduce exactly"
    );

    // --- Deadline hit rate: recomputed from complete events alone. ---
    let verdicts: Vec<bool> = log
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Complete | EventKind::Fail | EventKind::Quarantine
            )
        })
        .filter_map(|e| {
            let d = e.deadline_s?;
            Some(e.latency_s.expect("terminal events carry latency") <= d)
        })
        .collect();
    let log_rate = (!verdicts.is_empty())
        .then(|| verdicts.iter().filter(|&&m| m).count() as f64 / verdicts.len() as f64);
    assert_eq!(
        log_rate, report.deadline_hit_rate,
        "deadline hit rate must reproduce exactly from the log"
    );
    let rate = report.deadline_hit_rate.expect("deadlined jobs ran");
    assert!(rate < 1.0, "the 0-second deadline must be missed");

    // --- Queue-latency percentiles per class, from start events alone. ---
    for q in &report.queue_wait_by_class {
        let mut waits: Vec<f64> = log
            .iter()
            .filter(|e| e.kind == EventKind::Start && e.class == Some(q.class))
            .map(|e| e.queue_wait_s.expect("start carries queue_wait_s"))
            .collect();
        assert_eq!(waits.len(), q.samples);
        waits.sort_by(f64::total_cmp);
        assert_eq!(percentile(&waits, 0.50), q.p50_s, "{:?} p50", q.class);
        assert_eq!(percentile(&waits, 0.99), q.p99_s, "{:?} p99", q.class);
    }
    assert!(
        !report.queue_wait_by_class.is_empty(),
        "placements must produce queue-wait samples"
    );

    // --- The JSONL rendering is schema-valid line by line. ---
    let text = std::fs::read_to_string(&jsonl_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), log.len(), "one line per event");
    for line in &lines {
        assert!(
            line.starts_with("{\"schema\": \"exastro.event.v1\""),
            "bad schema header: {line}"
        );
        for key in ["\"sim_us\": ", "\"tick\": ", "\"kind\": \""] {
            assert!(line.contains(key), "missing {key}: {line}");
        }
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert_eq!(line.matches('[').count(), line.matches(']').count());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Without a fault model or deadlines, the log still carries the full
/// admit → lease → start → complete lifecycle and the report degrades
/// gracefully (no hit rate, empty MTTR series).
#[test]
fn fault_free_log_has_the_plain_lifecycle() {
    let dir = std::env::temp_dir().join(format!("exastro_events_plain_{}", std::process::id()));
    let memory = Arc::new(MemoryEventSink::new());
    let mut svc = Service::new(ServiceConfig {
        ckpt_root: dir.clone(),
        events: Some(memory.clone()),
        ..Default::default()
    });
    let id = svc
        .submit(JobSpec {
            resolution: 8,
            steps: 2,
            ..Default::default()
        })
        .expect("admit");
    assert!(svc.run_until_idle(10_000));
    let report = svc.report();
    let kinds: Vec<EventKind> = memory
        .snapshot()
        .iter()
        .filter(|e| e.job == Some(id) || e.kind == EventKind::Admit)
        .map(|e| e.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::Admit,
            EventKind::Lease,
            EventKind::Start,
            EventKind::Complete
        ]
    );
    assert_eq!(report.deadline_hit_rate, None);
    assert!(report.mttr_s.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
