//! End-to-end service tests: preemption/migration bit-exactness, failure
//! isolation, and scheduler liveness.

use exastro_service::{
    JobOutcome, JobSpec, NetChoice, PriorityClass, Scenario, Service, ServiceConfig, SubmitError,
};

fn test_cfg(tag: &str, nodes: usize) -> ServiceConfig {
    ServiceConfig {
        nodes,
        ckpt_root: std::env::temp_dir().join(format!("exastro_svc_{tag}_{}", std::process::id())),
        ..Default::default()
    }
}

/// Run one job alone on an uncontended service and return its final digest.
fn solo_digest(tag: &str, spec: JobSpec) -> u32 {
    let mut svc = Service::new(test_cfg(tag, 1));
    let id = svc.submit(spec).expect("solo submit");
    assert!(svc.run_until_idle(10_000), "solo run must drain");
    let report = svc.report();
    let rec = report.jobs.iter().find(|r| r.id == id).expect("record");
    assert_eq!(rec.outcome, JobOutcome::Completed, "solo run must complete");
    assert_eq!(rec.steps_done, rec.steps_requested);
    rec.final_digest
}

/// The tentpole acceptance test: a high-priority arrival preempts two
/// running low-priority jobs (checkpoint → requeue), which later resume —
/// generally on different ranks — and finish with states bit-identical to
/// uninterrupted runs of the same specs.
#[test]
fn preempt_migrate_resume_is_bit_exact_castro() {
    let spec_a = JobSpec {
        scenario: Scenario::SedovBlast,
        resolution: 12,
        steps: 10,
        priority: PriorityClass::Batch,
        ..Default::default()
    };
    let spec_c = JobSpec {
        scenario: Scenario::XrbFlame,
        network: NetChoice::TripleAlpha,
        resolution: 8,
        steps: 8,
        priority: PriorityClass::Batch,
        ..Default::default()
    };
    let want_a = solo_digest("solo_a", spec_a.clone());
    let want_c = solo_digest("solo_c", spec_c.clone());

    // Two nodes: A and C fill the pool; the 2-node High job must evict both.
    let mut svc = Service::new(test_cfg("contended", 2));
    let id_a = svc.submit(spec_a).unwrap();
    let id_c = svc.submit(spec_c).unwrap();
    svc.tick(); // place A and C, run their first slice
    assert_eq!(svc.running_count(), 2);
    let id_b = svc
        .submit(JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 12,
            nodes: 2,
            steps: 4,
            priority: PriorityClass::High,
            ..Default::default()
        })
        .unwrap();
    assert!(svc.run_until_idle(10_000), "contended run must drain");

    let report = svc.report();
    assert!(
        report.preemptions >= 2,
        "both low jobs must have been checkpointed off the machine, got {}",
        report.preemptions
    );
    let rec = |id| report.jobs.iter().find(|r| r.id == id).expect("record");
    for (id, want) in [(id_a, want_a), (id_c, want_c)] {
        let r = rec(id);
        assert_eq!(r.outcome, JobOutcome::Completed);
        assert!(r.preemptions >= 1, "{id:?} should have been preempted");
        assert_eq!(
            r.final_digest, want,
            "preempted+migrated job must end bit-identical to the solo run"
        );
    }
    assert_eq!(rec(id_b).outcome, JobOutcome::Completed);
    assert_eq!(rec(id_b).preemptions, 0, "High is never a victim here");
}

/// Same bit-exactness guarantee through the low-Mach (MAESTROeX) path,
/// whose checkpoints carry a 1-D base state alongside the field data.
#[test]
fn preempt_migrate_resume_is_bit_exact_maestro() {
    let spec = JobSpec {
        scenario: Scenario::ReactingBubble,
        resolution: 12,
        steps: 8,
        priority: PriorityClass::Batch,
        ..Default::default()
    };
    let want = solo_digest("solo_lm", spec.clone());

    let mut svc = Service::new(test_cfg("contended_lm", 1));
    let id = svc.submit(spec).unwrap();
    svc.tick(); // bubble starts on the full (one-node) pool
    let high = svc
        .submit(JobSpec {
            steps: 2,
            priority: PriorityClass::High,
            ..Default::default()
        })
        .unwrap();
    assert!(svc.run_until_idle(10_000));

    let report = svc.report();
    let r = report.jobs.iter().find(|r| r.id == id).unwrap();
    assert_eq!(r.outcome, JobOutcome::Completed);
    assert!(r.preemptions >= 1, "bubble must have been evicted");
    assert_eq!(r.final_digest, want, "low-Mach restart must be bit-exact");
    let h = report.jobs.iter().find(|r| r.id == high).unwrap();
    assert_eq!(h.outcome, JobOutcome::Completed);
}

/// Driver-level job failure (an unrecoverable burn) marks that job failed
/// and leaves every co-tenant untouched.
#[test]
fn unrecoverable_burn_fails_only_that_job() {
    use exastro_microphysics::{BdfErrorKind, BurnFaultConfig};

    let mut svc = Service::new(test_cfg("blast_radius", 1));
    let doomed = svc
        .submit(JobSpec {
            burn_faults: Some(BurnFaultConfig {
                seed: 7,
                rate: 1.0,
                rungs_to_fail: 99, // deeper than the retry ladder: fatal
                error: BdfErrorKind::MaxSteps,
            }),
            ..Default::default()
        })
        .unwrap();
    let bystander_a = svc.submit(JobSpec::default()).unwrap();
    let bystander_b = svc
        .submit(JobSpec {
            scenario: Scenario::ReactingBubble,
            steps: 3,
            ..Default::default()
        })
        .unwrap();
    assert!(svc.run_until_idle(10_000));

    let report = svc.report();
    assert_eq!(report.failed, 1);
    assert_eq!(report.completed, 2);
    let rec = |id| report.jobs.iter().find(|r| r.id == id).expect("record");
    assert!(matches!(rec(doomed).outcome, JobOutcome::Failed(_)));
    assert_eq!(rec(bystander_a).outcome, JobOutcome::Completed);
    assert_eq!(rec(bystander_b).outcome, JobOutcome::Completed);
}

/// Backpressure: the admission queue refuses, never buffers past its bound.
#[test]
fn queue_bound_is_backpressure_not_buffering() {
    let mut cfg = test_cfg("bound", 1);
    cfg.queue_bound = 3;
    let mut svc = Service::new(cfg);
    let mut admitted = 0;
    let mut refused = 0;
    for _ in 0..8 {
        match svc.submit(JobSpec {
            steps: 1,
            ..Default::default()
        }) {
            Ok(_) => admitted += 1,
            Err(SubmitError::QueueFull { bound }) => {
                assert_eq!(bound, 3);
                refused += 1;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
        assert!(svc.queue_depth() <= 3, "queue grew past its bound");
    }
    assert_eq!(admitted, 3);
    assert_eq!(refused, 5);
    assert!(svc.run_until_idle(10_000));
    assert_eq!(svc.report().completed, 3);
}

/// Oversized and incompatible specs are rejected outright, not queued.
#[test]
fn impossible_specs_are_rejected_at_submit() {
    let mut svc = Service::new(test_cfg("reject", 1));
    assert!(matches!(
        svc.submit(JobSpec {
            nodes: 5, // pool only has one node
            ..Default::default()
        }),
        Err(SubmitError::InvalidSpec(_))
    ));
    assert!(matches!(
        svc.submit(JobSpec {
            scenario: Scenario::XrbFlame,
            network: NetChoice::CBurn2, // no he4
            ..Default::default()
        }),
        Err(SubmitError::InvalidSpec(_))
    ));
    assert_eq!(svc.queue_depth(), 0);
    let report = svc.report();
    assert_eq!(report.submitted, 2);
    assert_eq!(report.rejected, 2);
}

mod fairness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Liveness + fairness under random mixes: the queue never exceeds
        /// its bound, every admitted job terminates (no starvation — the
        /// bypass guard bounds waiting), and completed jobs ran exactly the
        /// steps they asked for.
        #[test]
        fn every_admitted_job_terminates(
            scenarios in prop::collection::vec(0..2usize, 1..10),
            classes in prop::collection::vec(0..3usize, 1..10),
            steps in prop::collection::vec(1u64..5, 1..10),
        ) {
            let mut cfg = test_cfg("fair", 1);
            cfg.queue_bound = 4;
            let mut svc = Service::new(cfg);
            let mut admitted = Vec::new();
            let n = scenarios.len().min(classes.len()).min(steps.len());
            for i in 0..n {
                let spec = JobSpec {
                    scenario: [Scenario::SedovBlast, Scenario::ReactingBubble][scenarios[i]],
                    priority: [
                        PriorityClass::Batch,
                        PriorityClass::Normal,
                        PriorityClass::High,
                    ][classes[i]],
                    resolution: 8,
                    steps: steps[i],
                    ..Default::default()
                };
                match svc.submit(spec) {
                    Ok(id) => admitted.push(id),
                    Err(SubmitError::QueueFull { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
                prop_assert!(svc.queue_depth() <= 4, "queue exceeded its bound");
                // Interleave scheduling with submission (arrivals mid-flight).
                if i % 2 == 1 {
                    svc.tick();
                }
            }
            prop_assert!(svc.run_until_idle(50_000), "service failed to drain");
            let report = svc.report();
            // Every admitted job must reach a terminal state.
            prop_assert_eq!(report.completed + report.failed, admitted.len());
            for id in admitted {
                let rec = report.jobs.iter().find(|r| r.id == id);
                prop_assert!(rec.is_some(), "admitted job vanished");
                let rec = rec.unwrap();
                if rec.outcome == JobOutcome::Completed {
                    prop_assert_eq!(rec.steps_done, rec.steps_requested);
                }
            }
        }
    }
}
