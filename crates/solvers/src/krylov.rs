//! Krylov solvers (conjugate gradient) on multifab data.
//!
//! Used as a reference solver in tests and available as an alternative
//! bottom solve. CG's global dot products make it even more
//! reduction-heavy than multigrid — each iteration performs two
//! allreduces, which is exactly why the astro codes prefer multigrid with
//! a small bottom solve at scale.

use crate::multigrid::MgBc;
use exastro_amr::{CommTrace, Geometry, IntVect, MultiFab, Real};

/// CG solve statistics.
#[derive(Clone, Debug, Default)]
pub struct CgStats {
    /// Iterations performed.
    pub iters: usize,
    /// Final residual L2 norm.
    pub res: Real,
    /// Converged within tolerance?
    pub converged: bool,
    /// Ghost-exchange traffic.
    pub trace: CommTrace,
    /// Global reductions (dot products + norms).
    pub allreduces: u64,
}

/// Apply the (negative-definite) Laplacian `out = ∇²f` with the given BCs.
fn apply_laplacian(
    f: &mut MultiFab,
    out: &mut MultiFab,
    geom: &Geometry,
    bc: [MgBc; 3],
    trace: &mut CommTrace,
) {
    let t = f.fill_boundary(geom);
    trace.merge(&t);
    // Homogeneous physical BCs.
    let domain = geom.domain();
    for i in 0..f.nfabs() {
        let gb = f.grown_box(i);
        for d in 0..3 {
            if geom.periodic()[d] || bc[d] == MgBc::Periodic {
                continue;
            }
            let sign = if bc[d] == MgBc::Dirichlet { -1.0 } else { 1.0 };
            for side in 0..2 {
                let region = if side == 0 {
                    if gb.lo()[d] >= domain.lo()[d] {
                        continue;
                    }
                    let mut hi = gb.hi();
                    hi[d] = domain.lo()[d] - 1;
                    exastro_amr::IndexBox::new(gb.lo(), hi)
                } else {
                    if gb.hi()[d] <= domain.hi()[d] {
                        continue;
                    }
                    let mut lo = gb.lo();
                    lo[d] = domain.hi()[d] + 1;
                    exastro_amr::IndexBox::new(lo, gb.hi())
                };
                for iv in region.iter() {
                    let mut src = iv;
                    src[d] = if side == 0 {
                        2 * domain.lo()[d] - 1 - iv[d]
                    } else {
                        2 * domain.hi()[d] + 1 - iv[d]
                    };
                    for tdim in 0..3 {
                        src[tdim] = src[tdim].clamp(gb.lo()[tdim], gb.hi()[tdim]);
                    }
                    let v = f.fab(i).get(src, 0) * sign;
                    f.fab_mut(i).set(iv, 0, v);
                }
            }
        }
    }
    let dx = geom.dx();
    let c = [
        1.0 / (dx[0] * dx[0]),
        1.0 / (dx[1] * dx[1]),
        1.0 / (dx[2] * dx[2]),
    ];
    let diag = -2.0 * (c[0] + c[1] + c[2]);
    for i in 0..f.nfabs() {
        let vb = f.valid_box(i);
        for iv in vb.iter() {
            let fab = f.fab(i);
            let mut lap = diag * fab.get(iv, 0);
            for d in 0..3 {
                let e = IntVect::dim_vec(d);
                lap += c[d] * (fab.get(iv + e, 0) + fab.get(iv - e, 0));
            }
            out.fab_mut(i).set(iv, 0, lap);
        }
    }
}

/// Conjugate-gradient solve of `∇²φ = rhs`. `phi` must have ≥1 ghost zone.
pub fn cg_poisson(
    phi: &mut MultiFab,
    rhs: &MultiFab,
    geom: &Geometry,
    bc: [MgBc; 3],
    tol_rel: Real,
    max_iters: usize,
) -> CgStats {
    let ba = phi.box_array().clone();
    let dm = phi.dist_map().clone();
    let mut stats = CgStats::default();
    let mut r = MultiFab::new(ba.clone(), dm.clone(), 1, 0);
    let mut p = MultiFab::new(ba.clone(), dm.clone(), 1, 1);
    let mut ap = MultiFab::new(ba, dm, 1, 0);
    // r = rhs − Lφ
    apply_laplacian(phi, &mut ap, geom, bc, &mut stats.trace);
    r.copy_from(rhs);
    r.saxpy(-1.0, &ap);
    for i in 0..p.nfabs() {
        let vb = p.valid_box(i);
        p.fab_mut(i).copy_from(r.fab(i), vb, 0, 0, 1);
    }
    let mut rsold = r.dot(&r, 0);
    stats.allreduces += 1;
    let rhs_norm = rhs.norm_l2(0).max(1e-300);
    stats.allreduces += 1;
    let target = tol_rel * rhs_norm;
    for it in 0..max_iters {
        stats.iters = it + 1;
        apply_laplacian(&mut p, &mut ap, geom, bc, &mut stats.trace);
        let pap = p.dot(&ap, 0);
        stats.allreduces += 1;
        if pap.abs() < 1e-300 {
            break;
        }
        let alpha = rsold / pap;
        // φ += α p over valid regions; r -= α Ap.
        for i in 0..phi.nfabs() {
            let vb = phi.valid_box(i);
            for iv in vb.iter() {
                let v = phi.fab(i).get(iv, 0) + alpha * p.fab(i).get(iv, 0);
                phi.fab_mut(i).set(iv, 0, v);
            }
        }
        r.saxpy(-alpha, &ap);
        let rsnew = r.dot(&r, 0);
        stats.allreduces += 1;
        stats.res = rsnew.sqrt();
        if stats.res <= target {
            stats.converged = true;
            break;
        }
        let beta = rsnew / rsold;
        for i in 0..p.nfabs() {
            let vb = p.valid_box(i);
            for iv in vb.iter() {
                let v = r.fab(i).get(iv, 0) + beta * p.fab(i).get(iv, 0);
                p.fab_mut(i).set(iv, 0, v);
            }
        }
        rsold = rsnew;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigrid::{MgOptions, Multigrid};
    use exastro_amr::{BoxArray, DistStrategy, DistributionMapping};
    use std::f64::consts::PI;

    #[test]
    fn cg_matches_multigrid_on_dirichlet_poisson() {
        let n = 16;
        let geom = Geometry::cube(n, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let dm = DistributionMapping::new(&ba, 2, DistStrategy::RoundRobin);
        let mut rhs = MultiFab::new(ba.clone(), dm.clone(), 1, 0);
        let exact = |x: [Real; 3]| (PI * x[0]).sin() * (PI * x[1]).sin() * (PI * x[2]).sin();
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                rhs.fab_mut(i).set(iv, 0, -3.0 * PI * PI * exact(x));
            }
        }
        let mut phi_cg = MultiFab::new(ba.clone(), dm.clone(), 1, 1);
        let s = cg_poisson(&mut phi_cg, &rhs, &geom, [MgBc::Dirichlet; 3], 1e-10, 2000);
        assert!(s.converged, "CG residual {}", s.res);
        assert!(
            s.allreduces as usize >= 2 * s.iters,
            "CG must allreduce twice per iter"
        );
        let mut phi_mg = MultiFab::new(ba, dm, 1, 1);
        let mg = Multigrid::poisson([MgBc::Dirichlet; 3], MgOptions::default());
        let ms = mg.solve(&mut phi_mg, &rhs, &geom);
        assert!(ms.converged);
        for i in 0..phi_cg.nfabs() {
            let vb = phi_cg.valid_box(i);
            for iv in vb.iter() {
                let a = phi_cg.fab(i).get(iv, 0);
                let b = phi_mg.fab(i).get(iv, 0);
                assert!((a - b).abs() < 1e-6, "{iv:?}: cg {a} mg {b}");
            }
        }
    }

    #[test]
    fn cg_iteration_count_grows_with_resolution() {
        // Unpreconditioned CG needs O(n) iterations for Poisson; multigrid
        // is O(1) cycles. This contrast is why MG is the production solver.
        let run = |n: i32| {
            let geom = Geometry::cube(n, 1.0, false);
            let ba = BoxArray::decompose(geom.domain(), n.min(16), 4);
            let mut rhs = MultiFab::local(ba.clone(), 1, 0);
            for i in 0..rhs.nfabs() {
                let vb = rhs.valid_box(i);
                for iv in vb.iter() {
                    let x = geom.cell_center(iv);
                    rhs.fab_mut(i)
                        .set(iv, 0, (PI * x[0]).sin() * (PI * x[1]).sin());
                }
            }
            let mut phi = MultiFab::local(ba, 1, 1);
            cg_poisson(&mut phi, &rhs, &geom, [MgBc::Dirichlet; 3], 1e-8, 5000).iters
        };
        let i8 = run(8);
        let i32_ = run(32);
        assert!(i32_ > i8, "CG iters should grow: {i8} vs {i32_}");
    }
}

/// BiCGStab solve of `∇²φ = rhs` — handles the mildly non-symmetric
/// variable-coefficient operators that CG cannot; used by AMReX as an
/// alternative bottom solver.
#[allow(clippy::too_many_arguments)]
pub fn bicgstab_poisson(
    phi: &mut MultiFab,
    rhs: &MultiFab,
    geom: &Geometry,
    bc: [MgBc; 3],
    tol_rel: Real,
    max_iters: usize,
) -> CgStats {
    let ba = phi.box_array().clone();
    let dm = phi.dist_map().clone();
    let mut stats = CgStats::default();
    let mut r = MultiFab::new(ba.clone(), dm.clone(), 1, 0);
    let mut rhat = MultiFab::new(ba.clone(), dm.clone(), 1, 0);
    let mut p = MultiFab::new(ba.clone(), dm.clone(), 1, 1);
    let mut v = MultiFab::new(ba.clone(), dm.clone(), 1, 0);
    let mut s_vec = MultiFab::new(ba.clone(), dm.clone(), 1, 1);
    let mut t_vec = MultiFab::new(ba, dm, 1, 0);

    apply_laplacian(phi, &mut v, geom, bc, &mut stats.trace);
    r.copy_from(rhs);
    r.saxpy(-1.0, &v);
    rhat.copy_from(&r);
    for i in 0..p.nfabs() {
        let vb = p.valid_box(i);
        p.fab_mut(i).copy_from(r.fab(i), vb, 0, 0, 1);
    }
    let rhs_norm = rhs.norm_l2(0).max(1e-300);
    stats.allreduces += 1;
    let target = tol_rel * rhs_norm;
    let mut rho_old = rhat.dot(&r, 0);
    stats.allreduces += 1;
    for it in 0..max_iters {
        stats.iters = it + 1;
        apply_laplacian(&mut p, &mut v, geom, bc, &mut stats.trace);
        let alpha = {
            let d = rhat.dot(&v, 0);
            stats.allreduces += 1;
            if d.abs() < 1e-300 {
                break;
            }
            rho_old / d
        };
        // s = r − α v
        for i in 0..s_vec.nfabs() {
            let vb = s_vec.valid_box(i);
            for iv in vb.iter() {
                let val = r.fab(i).get(iv, 0) - alpha * v.fab(i).get(iv, 0);
                s_vec.fab_mut(i).set(iv, 0, val);
            }
        }
        apply_laplacian(&mut s_vec, &mut t_vec, geom, bc, &mut stats.trace);
        let tt = t_vec.dot(&t_vec, 0);
        stats.allreduces += 1;
        let omega = if tt.abs() < 1e-300 {
            0.0
        } else {
            let ts = t_vec.dot(&s_vec, 0);
            stats.allreduces += 1;
            ts / tt
        };
        // φ += α p + ω s ; r = s − ω t
        for i in 0..phi.nfabs() {
            let vb = phi.valid_box(i);
            for iv in vb.iter() {
                let val = phi.fab(i).get(iv, 0)
                    + alpha * p.fab(i).get(iv, 0)
                    + omega * s_vec.fab(i).get(iv, 0);
                phi.fab_mut(i).set(iv, 0, val);
                let rv = s_vec.fab(i).get(iv, 0) - omega * t_vec.fab(i).get(iv, 0);
                r.fab_mut(i).set(iv, 0, rv);
            }
        }
        let rn = r.norm_l2(0);
        stats.allreduces += 1;
        stats.res = rn;
        if rn <= target {
            stats.converged = true;
            break;
        }
        if omega.abs() < 1e-300 {
            break;
        }
        let rho_new = rhat.dot(&r, 0);
        stats.allreduces += 1;
        let beta = (rho_new / rho_old) * (alpha / omega);
        rho_old = rho_new;
        // p = r + β (p − ω v)
        for i in 0..p.nfabs() {
            let vb = p.valid_box(i);
            for iv in vb.iter() {
                let val = r.fab(i).get(iv, 0)
                    + beta * (p.fab(i).get(iv, 0) - omega * v.fab(i).get(iv, 0));
                p.fab_mut(i).set(iv, 0, val);
            }
        }
    }
    stats
}

#[cfg(test)]
mod bicgstab_tests {
    use super::*;
    use exastro_amr::BoxArray;
    use std::f64::consts::PI;

    #[test]
    fn bicgstab_matches_cg_on_poisson() {
        let n = 16;
        let geom = Geometry::cube(n, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mut rhs = MultiFab::local(ba.clone(), 1, 0);
        let exact = |x: [Real; 3]| (PI * x[0]).sin() * (PI * x[1]).sin() * (PI * x[2]).sin();
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                rhs.fab_mut(i).set(iv, 0, -3.0 * PI * PI * exact(x));
            }
        }
        let mut phi_b = MultiFab::local(ba.clone(), 1, 1);
        let sb = bicgstab_poisson(&mut phi_b, &rhs, &geom, [MgBc::Dirichlet; 3], 1e-9, 3000);
        assert!(sb.converged, "bicgstab res {}", sb.res);
        let mut phi_c = MultiFab::local(ba, 1, 1);
        let sc = cg_poisson(&mut phi_c, &rhs, &geom, [MgBc::Dirichlet; 3], 1e-9, 3000);
        assert!(sc.converged);
        for i in 0..phi_b.nfabs() {
            let vb = phi_b.valid_box(i);
            for iv in vb.iter() {
                let a = phi_b.fab(i).get(iv, 0);
                let b = phi_c.fab(i).get(iv, 0);
                assert!((a - b).abs() < 1e-5, "{iv:?}: bicgstab {a} cg {b}");
            }
        }
    }

    #[test]
    fn bicgstab_converges_faster_than_cg_in_iterations_or_comparable() {
        // Both are unpreconditioned; BiCGStab does 2 operator applications
        // per iteration, so allow up to ~60% of CG's iteration count plus
        // slack.
        let n = 16;
        let geom = Geometry::cube(n, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 16, 4);
        let mut rhs = MultiFab::local(ba.clone(), 1, 0);
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                rhs.fab_mut(i).set(iv, 0, (PI * x[0]).sin());
            }
        }
        let mut phi = MultiFab::local(ba.clone(), 1, 1);
        let sb = bicgstab_poisson(&mut phi, &rhs, &geom, [MgBc::Dirichlet; 3], 1e-8, 3000);
        let mut phi2 = MultiFab::local(ba, 1, 1);
        let sc = cg_poisson(&mut phi2, &rhs, &geom, [MgBc::Dirichlet; 3], 1e-8, 3000);
        assert!(sb.converged && sc.converged);
        assert!(
            sb.iters <= sc.iters,
            "bicgstab {} vs cg {}",
            sb.iters,
            sc.iters
        );
    }
}
