//! # exastro-solvers
//!
//! Linear solvers for the globally coupled physics of the suite: the
//! geometric multigrid used by Castro's self-gravity and MAESTROeX's
//! low-Mach projection (§IV-B of the paper), plus a conjugate-gradient
//! reference solver. All solvers run on distributed [`exastro_amr::MultiFab`]
//! data and return communication ledgers that the `exastro-machine` cluster
//! simulator prices when regenerating the weak-scaling figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed-extent arrays (species, dims, stencil
// points) are the house style in this numerical code; iterator rewrites
// obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod krylov;
pub mod multigrid;

pub use krylov::{bicgstab_poisson, cg_poisson, CgStats};
pub use multigrid::{LevelComm, MgBc, MgOptions, MgStats, Multigrid};
