//! Geometric multigrid for cell-centred Poisson/Helmholtz problems.
//!
//! Both astro codes depend on global linear solves: Castro's self-gravity
//! and MAESTROeX's low-Mach projection are Poisson solves performed with
//! multigrid, and at scale they are "extremely communication bound" — at
//! 125 nodes the reacting-bubble problem spends ~6× more time in the
//! multigrid solve than in the reactions (§IV-B). Every ghost exchange and
//! reduction performed here is therefore recorded in a [`CommTrace`] ledger
//! per level, which the `exastro-machine` simulator prices to reproduce
//! Figure 3.
//!
//! The solver is a classic V-cycle: red–black Gauss–Seidel smoothing,
//! full-weighting restriction (conservative average), piecewise-constant
//! prolongation, and a smoother-iterated coarsest solve. Inhomogeneous
//! boundary data is handled by always solving the *residual* equation with
//! homogeneous boundary conditions (callers pre-fill ghost values on the
//! initial guess).

use exastro_amr::{
    average_down, BoxArray, CommTrace, DistStrategy, DistributionMapping, Geometry, IntVect,
    MultiFab, Real,
};
use exastro_parallel::Profiler;

/// Boundary condition on each face for the multigrid operator (applied
/// homogeneously; see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MgBc {
    /// Periodic (handled by ghost exchange).
    Periodic,
    /// Value fixed to zero at the domain face.
    Dirichlet,
    /// Zero normal gradient at the domain face.
    Neumann,
}

/// Multigrid options.
#[derive(Clone, Debug)]
pub struct MgOptions {
    /// Target: ‖residual‖∞ ≤ `tol_rel` · ‖rhs‖∞ (+ `tol_abs`).
    pub tol_rel: Real,
    /// Absolute residual floor.
    pub tol_abs: Real,
    /// Maximum V-cycles.
    pub max_cycles: usize,
    /// Pre-smoothing sweeps per level.
    pub nu_pre: usize,
    /// Post-smoothing sweeps per level.
    pub nu_post: usize,
    /// Smoothing sweeps on the coarsest level.
    pub nu_bottom: usize,
    /// Stop coarsening when any dimension would fall below this.
    pub min_width: i32,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            tol_rel: 1e-10,
            tol_abs: 0.0,
            max_cycles: 60,
            nu_pre: 2,
            nu_post: 2,
            nu_bottom: 64,
            min_width: 4,
        }
    }
}

/// Communication ledger for one level of one solve.
#[derive(Clone, Debug, Default)]
pub struct LevelComm {
    /// Ghost-exchange traffic accumulated on this level.
    pub trace: CommTrace,
    /// Number of ghost exchanges performed.
    pub exchanges: u64,
    /// Smoother sweeps performed.
    pub sweeps: u64,
    /// Zones on this level.
    pub zones: i64,
    /// Number of boxes on this level.
    pub boxes: usize,
}

/// Solve statistics.
#[derive(Clone, Debug, Default)]
pub struct MgStats {
    /// V-cycles taken.
    pub cycles: usize,
    /// Initial ‖residual‖∞.
    pub res0: Real,
    /// Final ‖residual‖∞.
    pub res: Real,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Per-level communication ledgers (0 = finest).
    pub levels: Vec<LevelComm>,
    /// Global reductions performed (norms; one allreduce each).
    pub allreduces: u64,
}

struct MgLevel {
    geom: Geometry,
    phi: MultiFab,
    rhs: MultiFab,
    res: MultiFab,
}

/// The multigrid solver for `α a φ − β ∇²φ = rhs` with constant scalars
/// (Poisson: α = 0, β = −1 gives `∇²φ = rhs`).
pub struct Multigrid {
    alpha: Real,
    beta: Real,
    bc: [MgBc; 3],
    opts: MgOptions,
}

impl Multigrid {
    /// A Poisson solver `∇²φ = rhs`. (Internally `beta` multiplies the
    /// discrete Laplacian: the operator applied is `α φ + β ∇²φ`.)
    pub fn poisson(bc: [MgBc; 3], opts: MgOptions) -> Self {
        Multigrid {
            alpha: 0.0,
            beta: 1.0,
            bc,
            opts,
        }
    }

    /// A Helmholtz solver `α φ − β ∇²φ = rhs`.
    pub fn helmholtz(alpha: Real, beta: Real, bc: [MgBc; 3], opts: MgOptions) -> Self {
        Multigrid {
            alpha,
            beta: -beta,
            bc,
            opts,
        }
    }

    /// Fill ghost zones of `f` for the homogeneous operator: periodic
    /// exchange plus reflection (Neumann) or negation (Dirichlet) at
    /// non-periodic faces.
    fn fill_ghosts(&self, f: &mut MultiFab, geom: &Geometry, ledger: &mut LevelComm) {
        let trace = f.fill_boundary(geom);
        ledger.exchanges += 1;
        ledger.trace.merge(&trace);
        let domain = geom.domain();
        for i in 0..f.nfabs() {
            let gb = f.grown_box(i);
            for d in 0..3 {
                if geom.periodic()[d] || self.bc[d] == MgBc::Periodic {
                    continue;
                }
                let sign = match self.bc[d] {
                    MgBc::Dirichlet => -1.0,
                    MgBc::Neumann => 1.0,
                    MgBc::Periodic => unreachable!(),
                };
                // Low face.
                if gb.lo()[d] < domain.lo()[d] {
                    let mut hi = gb.hi();
                    hi[d] = domain.lo()[d] - 1;
                    let region = exastro_amr::IndexBox::new(gb.lo(), hi);
                    for iv in region.iter() {
                        let mut src = iv;
                        src[d] = 2 * domain.lo()[d] - 1 - iv[d];
                        for t in 0..3 {
                            src[t] = src[t].clamp(gb.lo()[t], gb.hi()[t]);
                        }
                        let v = f.fab(i).get(src, 0) * sign;
                        f.fab_mut(i).set(iv, 0, v);
                    }
                }
                // High face.
                if gb.hi()[d] > domain.hi()[d] {
                    let mut lo = gb.lo();
                    lo[d] = domain.hi()[d] + 1;
                    let region = exastro_amr::IndexBox::new(lo, gb.hi());
                    for iv in region.iter() {
                        let mut src = iv;
                        src[d] = 2 * domain.hi()[d] + 1 - iv[d];
                        for t in 0..3 {
                            src[t] = src[t].clamp(gb.lo()[t], gb.hi()[t]);
                        }
                        let v = f.fab(i).get(src, 0) * sign;
                        f.fab_mut(i).set(iv, 0, v);
                    }
                }
            }
        }
    }

    /// One red-black Gauss–Seidel sweep (both colours, with a ghost
    /// exchange between them).
    fn smooth(&self, lev: &mut MgLevel, ledger: &mut LevelComm) {
        let dx = lev.geom.dx();
        let bx2 = [
            self.beta / (dx[0] * dx[0]),
            self.beta / (dx[1] * dx[1]),
            self.beta / (dx[2] * dx[2]),
        ];
        let diag = self.alpha - 2.0 * (bx2[0] + bx2[1] + bx2[2]);
        for color in 0..2 {
            let mut phi =
                std::mem::replace(&mut lev.phi, MultiFab::local(BoxArray::default(), 1, 0));
            self.fill_ghosts(&mut phi, &lev.geom, ledger);
            for i in 0..phi.nfabs() {
                let vb = phi.valid_box(i);
                let rhs_fab = lev.rhs.fab(i);
                // Red-black by parity of i+j+k.
                let fab = phi.fab_mut(i);
                for iv in vb.iter() {
                    if (iv.sum() & 1) as usize != color {
                        continue;
                    }
                    let mut off = 0.0;
                    for d in 0..3 {
                        let e = IntVect::dim_vec(d);
                        off += bx2[d] * (fab.get(iv + e, 0) + fab.get(iv - e, 0));
                    }
                    let v = (rhs_fab.get(iv, 0) - off) / diag;
                    fab.set(iv, 0, v);
                }
            }
            lev.phi = phi;
        }
        ledger.sweeps += 1;
    }

    /// Residual `res = rhs − L φ` on a level; returns ‖res‖∞.
    fn residual(&self, lev: &mut MgLevel, ledger: &mut LevelComm) -> Real {
        let dx = lev.geom.dx();
        let bx2 = [
            self.beta / (dx[0] * dx[0]),
            self.beta / (dx[1] * dx[1]),
            self.beta / (dx[2] * dx[2]),
        ];
        let diag = self.alpha - 2.0 * (bx2[0] + bx2[1] + bx2[2]);
        let mut phi = std::mem::replace(&mut lev.phi, MultiFab::local(BoxArray::default(), 1, 0));
        self.fill_ghosts(&mut phi, &lev.geom, ledger);
        let mut rmax: Real = 0.0;
        for i in 0..phi.nfabs() {
            let vb = phi.valid_box(i);
            for iv in vb.iter() {
                let fab = phi.fab(i);
                let mut lap = diag * fab.get(iv, 0);
                for d in 0..3 {
                    let e = IntVect::dim_vec(d);
                    lap += bx2[d] * (fab.get(iv + e, 0) + fab.get(iv - e, 0));
                }
                let r = lev.rhs.fab(i).get(iv, 0) - lap;
                lev.res.fab_mut(i).set(iv, 0, r);
                rmax = rmax.max(r.abs());
            }
        }
        lev.phi = phi;
        rmax
    }

    fn build_levels(
        &self,
        geom: &Geometry,
        ba: &BoxArray,
        dm: &DistributionMapping,
    ) -> Vec<MgLevel> {
        let mut levels = Vec::new();
        let mut g = geom.clone();
        let mut cur_ba = ba.clone();
        let mut cur_dm = dm.clone();
        loop {
            levels.push(MgLevel {
                phi: MultiFab::new(cur_ba.clone(), cur_dm.clone(), 1, 1),
                rhs: MultiFab::new(cur_ba.clone(), cur_dm.clone(), 1, 0),
                res: MultiFab::new(cur_ba.clone(), cur_dm.clone(), 1, 0),
                geom: g.clone(),
            });
            let size = g.domain().size();
            let coarsenable =
                (0..3).all(|d| size[d] % 2 == 0 && size[d] / 2 >= self.opts.min_width);
            if !coarsenable {
                break;
            }
            // Coarsen the domain and re-decompose (agglomeration): fewer,
            // larger boxes at coarse levels, as AMReX MLMG does.
            let cdomain = g.domain().coarsen(2);
            g = Geometry::new(cdomain, g.prob_lo(), g.prob_hi(), g.periodic(), g.coord());
            let max_w = cdomain
                .size()
                .max_component()
                .min(32)
                .max(self.opts.min_width);
            cur_ba = BoxArray::decompose(cdomain, max_w, 2);
            cur_dm = DistributionMapping::new(&cur_ba, cur_dm.nranks(), DistStrategy::Sfc);
        }
        levels
    }

    fn vcycle(&self, levels: &mut [MgLevel], l: usize, stats: &mut MgStats) {
        // Per-level telemetry: the guard is scoped so the recursive descent
        // runs *outside* it, keeping level paths flat (mg_solve/level0,
        // mg_solve/level1, ...) instead of nesting with recursion depth.
        let lname = format!("level{l}");
        if l == levels.len() - 1 {
            let _r = Profiler::region(&lname);
            for _ in 0..self.opts.nu_bottom {
                let (lev, ledger) = (&mut levels[l], &mut stats.levels[l]);
                self.smooth(lev, ledger);
            }
            return;
        }
        {
            let _r = Profiler::region(&lname);
            for _ in 0..self.opts.nu_pre {
                self.smooth(&mut levels[l], &mut stats.levels[l]);
            }
            self.residual(&mut levels[l], &mut stats.levels[l]);
            // Restrict residual to the coarse rhs (conservative average),
            // zero the coarse correction.
            let (fine, coarse) = levels.split_at_mut(l + 1);
            let f = &fine[l];
            let c = &mut coarse[0];
            c.phi.set_val_all(0.0);
            // res lives on the fine BoxArray; average down into coarse rhs
            // across box arrays via an intermediate on the coarsened fine ba.
            let cba = f.res.box_array().coarsen(2);
            let mut tmp = MultiFab::new(cba, f.res.dist_map().clone(), 1, 0);
            average_down(&f.res, &mut tmp, 2);
            let trace = c.rhs.copy_from_other_ba(&tmp, 0, 1);
            stats.levels[l + 1].trace.merge(&trace);
            stats.levels[l + 1].exchanges += 1;
        }
        self.vcycle(levels, l + 1, stats);
        let _r = Profiler::region(&lname);
        // Prolong the coarse correction (piecewise constant) and add.
        {
            let (fine, coarse) = levels.split_at_mut(l + 1);
            let f = &mut fine[l];
            let c = &coarse[0];
            let cba = f.phi.box_array().coarsen(2);
            let mut tmp = MultiFab::new(cba, f.phi.dist_map().clone(), 1, 0);
            let trace = tmp.copy_from_other_ba(&c.phi, 0, 1);
            stats.levels[l].trace.merge(&trace);
            for i in 0..f.phi.nfabs() {
                let vb = f.phi.valid_box(i);
                for iv in vb.iter() {
                    let civ = iv.coarsen(IntVect::splat(2));
                    let corr = tmp.fab(i).get(civ, 0);
                    let v = f.phi.fab(i).get(iv, 0) + corr;
                    f.phi.fab_mut(i).set(iv, 0, v);
                }
            }
        }
        for _ in 0..self.opts.nu_post {
            self.smooth(&mut levels[l], &mut stats.levels[l]);
        }
    }

    /// Solve `L φ = rhs`. `phi` (1 component, ≥1 ghost zone) holds the
    /// initial guess — including any inhomogeneous boundary ghost values —
    /// and receives the solution. Returns solve statistics with the
    /// communication ledger.
    pub fn solve(&self, phi: &mut MultiFab, rhs: &MultiFab, geom: &Geometry) -> MgStats {
        let _prof = Profiler::region("mg_solve");
        assert!(phi.ngrow() >= 1, "phi needs ghost zones");
        assert_eq!(phi.ncomp(), 1);
        assert_eq!(rhs.ncomp(), 1);
        let mut levels = self.build_levels(geom, phi.box_array(), phi.dist_map());
        let mut stats = MgStats {
            levels: levels
                .iter()
                .map(|l| LevelComm {
                    zones: l.phi.box_array().total_zones(),
                    boxes: l.phi.box_array().len(),
                    ..LevelComm::default()
                })
                .collect(),
            ..MgStats::default()
        };
        // Finest level holds the actual problem.
        levels[0].phi.copy_from(phi);
        // Preserve caller-supplied inhomogeneous ghost data by copying the
        // whole fabs (valid + ghost).
        for i in 0..phi.nfabs() {
            let data = phi.fab(i).data().to_vec();
            levels[0].phi.fab_mut(i).data_mut().copy_from_slice(&data);
        }
        levels[0].rhs.copy_from(rhs);

        let rhs_norm = rhs.norm_inf(0);
        stats.allreduces += 1;
        let target = self.opts.tol_rel * rhs_norm + self.opts.tol_abs;
        let mut lstats_dummy = LevelComm::default();
        let r0 = {
            let lev = &mut levels[0];
            self.residual(lev, &mut lstats_dummy)
        };
        stats.levels[0].trace.merge(&lstats_dummy.trace);
        stats.levels[0].exchanges += lstats_dummy.exchanges;
        stats.res0 = r0;
        stats.allreduces += 1;
        let mut res = r0;
        while res > target.max(1e-300) && stats.cycles < self.opts.max_cycles {
            self.vcycle(&mut levels, 0, &mut stats);
            stats.cycles += 1;
            let r = {
                let mut ledger = LevelComm::default();
                let v = self.residual(&mut levels[0], &mut ledger);
                stats.levels[0].trace.merge(&ledger.trace);
                stats.levels[0].exchanges += ledger.exchanges;
                v
            };
            stats.allreduces += 1;
            res = r;
            if !res.is_finite() {
                break;
            }
        }
        stats.res = res;
        stats.converged = res <= target.max(1e-300);
        phi.copy_from(&levels[0].phi);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exastro_amr::IndexBox;
    use std::f64::consts::PI;

    fn periodic_setup(n: i32, max_grid: i32) -> (Geometry, MultiFab, MultiFab) {
        let geom = Geometry::cube(n, 1.0, true);
        let ba = BoxArray::decompose(geom.domain(), max_grid, 4);
        let dm = DistributionMapping::new(&ba, 4, DistStrategy::Sfc);
        let phi = MultiFab::new(ba.clone(), dm.clone(), 1, 1);
        let rhs = MultiFab::new(ba, dm, 1, 0);
        (geom, phi, rhs)
    }

    #[test]
    fn poisson_periodic_sinusoid() {
        // ∇²φ = rhs with φ = sin(2πx)sin(2πy)sin(2πz):
        // rhs = -12π² φ.
        let n = 32;
        let (geom, mut phi, mut rhs) = periodic_setup(n, 16);
        let k = 2.0 * PI;
        let exact = |x: [Real; 3]| (k * x[0]).sin() * (k * x[1]).sin() * (k * x[2]).sin();
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                rhs.fab_mut(i).set(iv, 0, -3.0 * k * k * exact(x));
            }
        }
        let mg = Multigrid::poisson([MgBc::Periodic; 3], MgOptions::default());
        let stats = mg.solve(&mut phi, &rhs, &geom);
        assert!(stats.converged, "residual {} of {}", stats.res, stats.res0);
        assert!(stats.cycles < 30, "{} cycles", stats.cycles);
        // Compare to the exact solution up to discretization error O(h²)
        // and the arbitrary constant (periodic nullspace): subtract means.
        let mean_num: Real = phi.sum(0) / geom.domain().num_zones() as Real;
        let mut err_max: Real = 0.0;
        for i in 0..phi.nfabs() {
            let vb = phi.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                let e = (phi.fab(i).get(iv, 0) - mean_num) - exact(x);
                err_max = err_max.max(e.abs());
            }
        }
        assert!(err_max < 0.02, "solution error {err_max}");
    }

    #[test]
    fn residual_reduction_rate_is_multigrid_like() {
        // A healthy V(2,2) cycle reduces the residual by ~an order of
        // magnitude per cycle.
        let (geom, mut phi, mut rhs) = periodic_setup(32, 8);
        // Random-ish zero-mean rhs.
        let mut seed = 9u64;
        let mut total = 0.0;
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = ((seed >> 33) as Real / (1u64 << 31) as Real) - 0.5;
                rhs.fab_mut(i).set(iv, 0, v);
                total += v;
            }
        }
        let mean = total / geom.domain().num_zones() as Real;
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let v = rhs.fab(i).get(iv, 0) - mean;
                rhs.fab_mut(i).set(iv, 0, v);
            }
        }
        let mg = Multigrid::poisson(
            [MgBc::Periodic; 3],
            MgOptions {
                tol_rel: 1e-11,
                ..Default::default()
            },
        );
        let stats = mg.solve(&mut phi, &rhs, &geom);
        assert!(stats.converged);
        let per_cycle = (stats.res0 / stats.res.max(1e-300)).powf(1.0 / stats.cycles as Real);
        assert!(
            per_cycle > 4.0,
            "reduction per cycle only {per_cycle:.2} over {} cycles",
            stats.cycles
        );
    }

    #[test]
    fn dirichlet_solution_matches_manufactured() {
        // φ = sin(πx) sin(πy) sin(πz) vanishes on all faces of [0,1]³.
        let n = 32;
        let geom = Geometry::cube(n, 1.0, false);
        let ba = BoxArray::decompose(geom.domain(), 16, 4);
        let mut phi = MultiFab::local(ba.clone(), 1, 1);
        let mut rhs = MultiFab::local(ba, 1, 0);
        let exact = |x: [Real; 3]| (PI * x[0]).sin() * (PI * x[1]).sin() * (PI * x[2]).sin();
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                rhs.fab_mut(i).set(iv, 0, -3.0 * PI * PI * exact(x));
            }
        }
        let mg = Multigrid::poisson([MgBc::Dirichlet; 3], MgOptions::default());
        let stats = mg.solve(&mut phi, &rhs, &geom);
        assert!(stats.converged, "res {} / {}", stats.res, stats.res0);
        let mut err_max: Real = 0.0;
        for i in 0..phi.nfabs() {
            let vb = phi.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                err_max = err_max.max((phi.fab(i).get(iv, 0) - exact(x)).abs());
            }
        }
        assert!(err_max < 0.01, "error {err_max}");
    }

    #[test]
    fn helmholtz_constant_solution() {
        // α φ = rhs with β = 0 … use α=2, β tiny via helmholtz(2, 0):
        // actually test α φ − β∇²φ with φ constant: ∇²φ = 0, so φ = rhs/α.
        let (geom, mut phi, mut rhs) = periodic_setup(16, 8);
        rhs.set_val(0, 6.0);
        let mg = Multigrid::helmholtz(2.0, 1.0, [MgBc::Periodic; 3], MgOptions::default());
        let stats = mg.solve(&mut phi, &rhs, &geom);
        assert!(stats.converged);
        for i in 0..phi.nfabs() {
            let vb = phi.valid_box(i);
            for iv in vb.iter() {
                assert!((phi.fab(i).get(iv, 0) - 3.0).abs() < 1e-8);
            }
        }
        let _ = geom;
    }

    #[test]
    fn comm_ledger_is_populated_and_coarse_levels_cheaper() {
        let (geom, mut phi, mut rhs) = periodic_setup(32, 8);
        rhs.set_val(0, 1.0);
        // Zero-mean for periodic solvability.
        let mean = rhs.sum(0) / geom.domain().num_zones() as Real;
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let v = rhs.fab(i).get(iv, 0) - mean;
                rhs.fab_mut(i).set(iv, 0, v);
            }
        }
        let mg = Multigrid::poisson([MgBc::Periodic; 3], MgOptions::default());
        let stats = mg.solve(&mut phi, &rhs, &geom);
        assert!(stats.levels.len() >= 3, "expected a level hierarchy");
        assert!(stats.allreduces >= 2);
        let finest = &stats.levels[0];
        assert!(finest.exchanges > 0);
        assert!(finest.trace.network_bytes() + finest.trace.local_bytes > 0);
        // Coarser levels move fewer bytes per exchange.
        let finest_bytes = finest.trace.network_bytes() + finest.trace.local_bytes;
        let last = stats.levels.last().unwrap();
        let last_bytes = last.trace.network_bytes() + last.trace.local_bytes;
        assert!(
            last_bytes < finest_bytes,
            "coarsest {last_bytes} vs finest {finest_bytes}"
        );
        // Level sizes shrink by ~8× per level.
        for w in stats.levels.windows(2) {
            assert!(w[1].zones < w[0].zones);
        }
    }

    #[test]
    fn singular_rhs_nonconvergence_is_reported() {
        // Periodic Poisson with non-zero-mean rhs has no solution; the
        // solver must not report convergence (the residual stalls at the
        // mean).
        let (geom, mut phi, mut rhs) = periodic_setup(16, 8);
        rhs.set_val(0, 1.0);
        let mg = Multigrid::poisson(
            [MgBc::Periodic; 3],
            MgOptions {
                max_cycles: 8,
                ..Default::default()
            },
        );
        let stats = mg.solve(&mut phi, &rhs, &geom);
        assert!(!stats.converged);
        let _ = geom;
    }

    #[test]
    fn anisotropic_dx_still_converges() {
        let domain = IndexBox::sized(IntVect::new(32, 16, 8));
        let geom = Geometry::new(
            domain,
            [0.0; 3],
            [1.0, 1.0, 1.0], // dx differs per dimension
            [true; 3],
            exastro_amr::CoordSys::Cartesian,
        );
        let ba = BoxArray::decompose(domain, 8, 4);
        let mut phi = MultiFab::local(ba.clone(), 1, 1);
        let mut rhs = MultiFab::local(ba, 1, 0);
        let k = 2.0 * PI;
        for i in 0..rhs.nfabs() {
            let vb = rhs.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                rhs.fab_mut(i)
                    .set(iv, 0, (k * x[0]).sin() * (k * x[1]).cos());
            }
        }
        let mg = Multigrid::poisson(
            [MgBc::Periodic; 3],
            MgOptions {
                min_width: 2,
                ..Default::default()
            },
        );
        let stats = mg.solve(&mut phi, &rhs, &geom);
        assert!(stats.converged, "res {} / {}", stats.res, stats.res0);
    }
}
