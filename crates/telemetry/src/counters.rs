//! Named monotonic counters for categorical tallies.
//!
//! Where a [`Histogram`](crate::histogram::Histogram) captures a value
//! distribution, a counter captures a total: bytes written by the
//! checkpoint manager, or how many burns finished on each retry-ladder
//! rung. Counter updates are rare events (once per checkpoint, once per
//! recovered burn), so a single mutex-guarded map is plenty.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

fn registry() -> &'static Mutex<HashMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Add `delta` to the process-wide counter `name` (created at 0 on first
/// use).
pub fn counter_add(name: &str, delta: u64) {
    let mut reg = registry().lock().unwrap();
    *reg.entry(name.to_string()).or_insert(0) += delta;
}

/// Current value of counter `name` (0 if never touched).
pub fn counter_get(name: &str) -> u64 {
    registry().lock().unwrap().get(name).copied().unwrap_or(0)
}

/// All counters as `(name, value)` pairs, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, &n)| (k.clone(), n))
        .collect();
    v.sort();
    v
}

/// Zero every counter.
pub fn reset() {
    registry().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        counter_add("test.ctr.b", 2);
        counter_add("test.ctr.a", 1);
        counter_add("test.ctr.b", 3);
        assert_eq!(counter_get("test.ctr.b"), 5);
        assert_eq!(counter_get("test.ctr.a"), 1);
        assert_eq!(counter_get("test.ctr.never"), 0);
        let snap = counters_snapshot();
        let ours: Vec<_> = snap
            .iter()
            .filter(|(k, _)| k.starts_with("test.ctr."))
            .collect();
        assert_eq!(ours.len(), 2);
        assert!(ours[0].0 < ours[1].0, "snapshot must be name-sorted");
    }
}
