//! Task-graph traces and critical-path analysis.
//!
//! PR 9 made the overlapped drivers *schedule* ghost exchange behind
//! interior compute; this module makes the overlap *measurable*. The
//! task-graph executor ([`TaskGraph::run`] in `exastro-parallel`) records,
//! per task, when it became ready, when a worker started it, when it
//! finished, and which worker ran it — a [`GraphTrace`]. The analyzer here
//! ([`summarize`]) turns that into the quantities the HPX/APEX-style
//! task-level tracing literature (Daiß et al. 2024) treats as first-class:
//!
//! * the **measured critical path** — the longest dependency chain by
//!   observed run time, which bounds the wall clock no matter how many
//!   workers are added;
//! * **per-task slack** — how much a task could stretch before it lands on
//!   the critical path (slack 0 ⇒ it is already on it);
//! * the **queue-wait / run-time breakdown** — scheduler-induced latency
//!   vs. useful work;
//! * the **measured overlap efficiency** — the fraction of comm-task wall
//!   time (pack/unpack) that ran concurrently with compute tasks, directly
//!   comparable to `machine::OverlapModel`'s *predicted* hidden fraction.
//!
//! Recording is gated on its own flag ([`enabled`]) layered on top of
//! [`Telemetry::is_enabled`](crate::Telemetry::is_enabled), because per-task
//! timestamps cost more than a span begin/end; the `ablation_telemetry`
//! bench keeps the enabled cost under 2% of an overlapped step.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::metrics::json_f64;

/// What a task contributes to the overlap ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskClass {
    /// Ghost-exchange work: pack / unpack / boundary fill.
    Comm,
    /// Kernel work: interior, band, update sweeps.
    Compute,
    /// Anything else (bookkeeping, untagged tasks).
    Other,
}

impl TaskClass {
    /// Stable lowercase name used in JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            TaskClass::Comm => "comm",
            TaskClass::Compute => "compute",
            TaskClass::Other => "other",
        }
    }
}

/// Display name + class for one task, supplied by the graph builder.
#[derive(Clone, Debug)]
pub struct TaskLabel {
    /// Span / JSON name (e.g. `"pack.f3"`).
    pub name: String,
    /// Overlap-ledger class.
    pub class: TaskClass,
}

impl TaskLabel {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, class: TaskClass) -> Self {
        TaskLabel {
            name: name.into(),
            class,
        }
    }
}

/// One task's observed schedule within a graph run. All timestamps are
/// nanoseconds since the run started.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Task id within the graph.
    pub task: usize,
    /// Display name.
    pub name: String,
    /// Overlap-ledger class.
    pub class: TaskClass,
    /// When the task's last dependency completed (0 for source tasks).
    pub ready_ns: u64,
    /// When a worker dequeued it.
    pub start_ns: u64,
    /// When it finished.
    pub end_ns: u64,
    /// Stable trace id of the worker thread that ran it.
    pub worker: u64,
}

/// One recorded graph execution: per-task schedules plus the dependency
/// structure needed to recover the critical path.
#[derive(Clone, Debug)]
pub struct GraphTrace {
    /// Graph label (e.g. `"hydro.sweep.x"`).
    pub label: String,
    /// Wall time of the whole run in nanoseconds.
    pub wall_ns: u64,
    /// Per-task records, indexed by task id.
    pub tasks: Vec<TaskRecord>,
    /// `deps[t]` — tasks that had to complete before `t`.
    pub deps: Vec<Vec<usize>>,
}

static GRAPH_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_FLOW_ID: AtomicU64 = AtomicU64::new(1);

/// Maximum retained traces; older runs are evicted first.
const MAX_TRACES: usize = 256;

fn registry() -> &'static Mutex<Vec<GraphTrace>> {
    static REGISTRY: OnceLock<Mutex<Vec<GraphTrace>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn per-task graph recording on. Idempotent.
pub fn enable() {
    GRAPH_ENABLED.store(true, Ordering::Relaxed);
}

/// Turn per-task graph recording off. Idempotent.
pub fn disable() {
    GRAPH_ENABLED.store(false, Ordering::Relaxed);
}

/// The one branch `TaskGraph::run` checks before paying for timestamps.
#[inline]
pub fn enabled() -> bool {
    GRAPH_ENABLED.load(Ordering::Relaxed)
}

/// Reserve `n` process-unique flow ids; returns the first. Keeps dependency
/// arrows from distinct graph runs from aliasing in one exported trace.
pub fn reserve_flow_ids(n: u64) -> u64 {
    NEXT_FLOW_ID.fetch_add(n.max(1), Ordering::Relaxed)
}

/// Store a completed graph trace (bounded; oldest evicted past
/// [`MAX_TRACES`]).
pub fn record(trace: GraphTrace) {
    let mut reg = registry().lock().unwrap();
    if reg.len() >= MAX_TRACES {
        reg.remove(0);
    }
    reg.push(trace);
}

/// Remove and return every stored trace (in recording order).
pub fn take() -> Vec<GraphTrace> {
    std::mem::take(&mut *registry().lock().unwrap())
}

/// Number of stored traces.
pub fn len() -> usize {
    registry().lock().unwrap().len()
}

/// Discard all stored traces.
pub fn clear() {
    registry().lock().unwrap().clear();
}

/// Per-task analysis output (microseconds).
#[derive(Clone, Debug)]
pub struct TaskStat {
    /// Task id within the graph.
    pub task: usize,
    /// Display name.
    pub name: String,
    /// Overlap-ledger class.
    pub class: TaskClass,
    /// Worker thread that ran it.
    pub worker: u64,
    /// `start - ready`: time spent waiting in the ready queue.
    pub queue_wait_us: f64,
    /// `end - start`: observed run time.
    pub run_us: f64,
    /// How much this task could stretch before landing on the critical
    /// path (0 ⇒ it is on it).
    pub slack_us: f64,
    /// Start timestamp relative to the run, µs.
    pub start_us: f64,
    /// End timestamp relative to the run, µs.
    pub end_us: f64,
    /// True when the task lies on the reported critical path.
    pub on_critical_path: bool,
}

/// The measured-schedule summary for one graph run (microseconds).
#[derive(Clone, Debug)]
pub struct GraphSummary {
    /// Graph label.
    pub label: String,
    /// Task count.
    pub tasks: usize,
    /// Edge count.
    pub edges: usize,
    /// Distinct workers that executed tasks.
    pub workers: usize,
    /// Wall time of the run.
    pub wall_us: f64,
    /// Sum of task run times (the serial-equivalent work).
    pub total_run_us: f64,
    /// Sum of task queue waits.
    pub total_queue_wait_us: f64,
    /// Length of the longest dependency chain by observed run time.
    pub critical_path_us: f64,
    /// Task ids of that chain, in execution order.
    pub critical_path: Vec<usize>,
    /// Comm-class wall time (union of pack/unpack task intervals).
    pub comm_us: f64,
    /// Compute-class wall time (union of kernel task intervals).
    pub compute_us: f64,
    /// Comm wall time that ran concurrently with compute.
    pub hidden_comm_us: f64,
    /// `hidden_comm_us / comm_us`; `None` when the graph has no comm tasks.
    pub measured_overlap_efficiency: Option<f64>,
    /// `OverlapModel`'s predicted hidden fraction, once reconciled.
    pub predicted_overlap_efficiency: Option<f64>,
    /// `measured - predicted`, once reconciled.
    pub overlap_drift: Option<f64>,
    /// Per-task stats, indexed by task id.
    pub task_stats: Vec<TaskStat>,
}

impl GraphSummary {
    /// Attach a model prediction (e.g.
    /// `machine::OverlapModel::predicted_hidden_fraction`) and derive the
    /// measured-vs-modeled drift.
    pub fn reconcile(&mut self, predicted: f64) {
        self.predicted_overlap_efficiency = Some(predicted);
        self.overlap_drift = self.measured_overlap_efficiency.map(|m| m - predicted);
    }
}

/// Merge possibly-overlapping `(start, end)` intervals into a disjoint
/// sorted union.
fn interval_union(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|&(s, e)| e > s);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn interval_len(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|&(s, e)| e - s).sum()
}

/// Total length of the intersection of two disjoint sorted interval sets.
fn intersection_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

const NS_PER_US: f64 = 1_000.0;

/// Analyze one recorded run: critical path, slack, queue-wait breakdown,
/// and the measured overlap efficiency.
pub fn summarize(trace: &GraphTrace) -> GraphSummary {
    let n = trace.tasks.len();
    let dur: Vec<u64> = trace
        .tasks
        .iter()
        .map(|t| t.end_ns.saturating_sub(t.start_ns))
        .collect();

    // Dependents + a Kahn order over the recorded graph. The executor only
    // records graphs it successfully ran, so the order always completes.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges = 0usize;
    for (t, deps) in trace.deps.iter().enumerate() {
        for &d in deps {
            dependents[d].push(t);
            edges += 1;
        }
    }
    let mut indeg: Vec<usize> = trace.deps.iter().map(Vec::len).collect();
    let mut order: Vec<usize> = (0..n).filter(|&t| indeg[t] == 0).collect();
    let mut head = 0usize;
    while head < order.len() {
        let t = order[head];
        head += 1;
        for &d in &dependents[t] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                order.push(d);
            }
        }
    }

    // Forward pass: finish[t] = dur[t] + max(finish of deps). Backward
    // pass: tail[t] = dur[t] + max(tail of dependents). The longest chain
    // through t is finish[t] + tail[t] - dur[t]; slack is the critical
    // length minus that.
    let mut finish: Vec<u64> = vec![0; n];
    for &t in &order {
        let best = trace.deps[t].iter().map(|&d| finish[d]).max().unwrap_or(0);
        finish[t] = best + dur[t];
    }
    let mut tail: Vec<u64> = vec![0; n];
    for &t in order.iter().rev() {
        let best = dependents[t].iter().map(|&d| tail[d]).max().unwrap_or(0);
        tail[t] = best + dur[t];
    }
    let critical_ns = finish.iter().copied().max().unwrap_or(0);

    // Walk the chain back from the task realizing the critical length: the
    // on-chain predecessor is always the dependency with the latest finish.
    let mut critical_path = Vec::new();
    if n > 0 {
        let mut cur = (0..n).max_by_key(|&t| finish[t]).unwrap();
        loop {
            critical_path.push(cur);
            match trace.deps[cur].iter().copied().max_by_key(|&d| finish[d]) {
                Some(d) => cur = d,
                None => break,
            }
        }
        critical_path.reverse();
    }
    let on_cp: std::collections::HashSet<usize> = critical_path.iter().copied().collect();

    // Overlap ledger: wall-clock unions per class.
    let class_iv = |class: TaskClass| -> Vec<(u64, u64)> {
        interval_union(
            trace
                .tasks
                .iter()
                .filter(|t| t.class == class)
                .map(|t| (t.start_ns, t.end_ns))
                .collect(),
        )
    };
    let comm_iv = class_iv(TaskClass::Comm);
    let compute_iv = class_iv(TaskClass::Compute);
    let comm_ns = interval_len(&comm_iv);
    let compute_ns = interval_len(&compute_iv);
    let hidden_ns = intersection_len(&comm_iv, &compute_iv);

    let task_stats: Vec<TaskStat> = trace
        .tasks
        .iter()
        .enumerate()
        .map(|(t, r)| {
            let through = finish[t] + tail[t] - dur[t];
            TaskStat {
                task: t,
                name: r.name.clone(),
                class: r.class,
                worker: r.worker,
                queue_wait_us: r.start_ns.saturating_sub(r.ready_ns) as f64 / NS_PER_US,
                run_us: dur[t] as f64 / NS_PER_US,
                slack_us: critical_ns.saturating_sub(through) as f64 / NS_PER_US,
                start_us: r.start_ns as f64 / NS_PER_US,
                end_us: r.end_ns as f64 / NS_PER_US,
                on_critical_path: on_cp.contains(&t),
            }
        })
        .collect();

    let workers: std::collections::HashSet<u64> = trace.tasks.iter().map(|t| t.worker).collect();
    GraphSummary {
        label: trace.label.clone(),
        tasks: n,
        edges,
        workers: workers.len(),
        wall_us: trace.wall_ns as f64 / NS_PER_US,
        total_run_us: dur.iter().sum::<u64>() as f64 / NS_PER_US,
        total_queue_wait_us: task_stats.iter().map(|s| s.queue_wait_us).sum(),
        critical_path_us: critical_ns as f64 / NS_PER_US,
        critical_path,
        comm_us: comm_ns as f64 / NS_PER_US,
        compute_us: compute_ns as f64 / NS_PER_US,
        hidden_comm_us: hidden_ns as f64 / NS_PER_US,
        measured_overlap_efficiency: (comm_ns > 0).then(|| hidden_ns as f64 / comm_ns as f64),
        predicted_overlap_efficiency: None,
        overlap_drift: None,
        task_stats,
    }
}

/// Aggregate measured overlap efficiency over several runs: total hidden
/// comm wall time over total comm wall time. `None` when no run had comm
/// tasks.
pub fn overall_efficiency(summaries: &[GraphSummary]) -> Option<f64> {
    let comm: f64 = summaries.iter().map(|s| s.comm_us).sum();
    let hidden: f64 = summaries.iter().map(|s| s.hidden_comm_us).sum();
    (comm > 0.0).then(|| hidden / comm)
}

fn json_class_counts(summary: &GraphSummary) -> String {
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for s in &summary.task_stats {
        *counts.entry(s.class.name()).or_insert(0) += 1;
    }
    let mut pairs: Vec<_> = counts.into_iter().collect();
    pairs.sort();
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

/// Serialize summaries as the `exastro.graphtrace.v1` JSON artifact.
pub fn summaries_to_json(summaries: &[GraphSummary]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"exastro.graphtrace.v1\",\n  \"graphs\": [\n");
    for (gi, s) in summaries.iter().enumerate() {
        let chain: Vec<String> = s
            .critical_path
            .iter()
            .map(|&t| {
                let st = &s.task_stats[t];
                format!(
                    "{{\"task\": {}, \"name\": \"{}\", \"class\": \"{}\", \"run_us\": {}, \"queue_wait_us\": {}, \"slack_us\": {}}}",
                    t,
                    crate::trace::json_escape(&st.name),
                    st.class.name(),
                    json_f64(st.run_us),
                    json_f64(st.queue_wait_us),
                    json_f64(st.slack_us),
                )
            })
            .collect();
        let stats: Vec<String> = s
            .task_stats
            .iter()
            .map(|st| {
                format!(
                    "{{\"task\": {}, \"name\": \"{}\", \"class\": \"{}\", \"worker\": {}, \"start_us\": {}, \"end_us\": {}, \"queue_wait_us\": {}, \"run_us\": {}, \"slack_us\": {}, \"on_critical_path\": {}}}",
                    st.task,
                    crate::trace::json_escape(&st.name),
                    st.class.name(),
                    st.worker,
                    json_f64(st.start_us),
                    json_f64(st.end_us),
                    json_f64(st.queue_wait_us),
                    json_f64(st.run_us),
                    json_f64(st.slack_us),
                    st.on_critical_path,
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"tasks\": {}, \"edges\": {}, \"workers\": {}, \"wall_us\": {}, \"total_run_us\": {}, \"total_queue_wait_us\": {}, \"critical_path_us\": {}, \"comm_us\": {}, \"compute_us\": {}, \"hidden_comm_us\": {}, \"measured_overlap_efficiency\": {}, \"predicted_overlap_efficiency\": {}, \"overlap_drift\": {}, \"class_counts\": {}, \"critical_path\": [{}], \"task_stats\": [{}]}}{}\n",
            crate::trace::json_escape(&s.label),
            s.tasks,
            s.edges,
            s.workers,
            json_f64(s.wall_us),
            json_f64(s.total_run_us),
            json_f64(s.total_queue_wait_us),
            json_f64(s.critical_path_us),
            json_f64(s.comm_us),
            json_f64(s.compute_us),
            json_f64(s.hidden_comm_us),
            opt_f64(s.measured_overlap_efficiency),
            opt_f64(s.predicted_overlap_efficiency),
            opt_f64(s.overlap_drift),
            json_class_counts(s),
            chain.join(", "),
            stats.join(", "),
            if gi + 1 == summaries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the summaries artifact to `path`; returns the path written.
pub fn write_summaries(
    path: impl AsRef<Path>,
    summaries: &[GraphSummary],
) -> std::io::Result<PathBuf> {
    let path = path.as_ref().to_path_buf();
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    f.write_all(summaries_to_json(summaries).as_bytes())?;
    f.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        task: usize,
        name: &str,
        class: TaskClass,
        ready: u64,
        start: u64,
        end: u64,
        worker: u64,
    ) -> TaskRecord {
        TaskRecord {
            task,
            name: name.to_string(),
            class,
            ready_ns: ready,
            start_ns: start,
            end_ns: end,
            worker,
        }
    }

    /// Diamond: 0 -> {1, 2} -> 3; task 1 is the long arm.
    fn diamond_trace() -> GraphTrace {
        GraphTrace {
            label: "diamond".to_string(),
            wall_ns: 10_000,
            tasks: vec![
                rec(0, "src", TaskClass::Other, 0, 0, 1_000, 1),
                rec(1, "long", TaskClass::Compute, 1_000, 1_000, 7_000, 1),
                rec(2, "short", TaskClass::Comm, 1_000, 1_200, 3_000, 2),
                rec(3, "sink", TaskClass::Other, 7_000, 7_500, 9_000, 1),
            ],
            deps: vec![vec![], vec![0], vec![0], vec![1, 2]],
        }
    }

    #[test]
    fn critical_path_finds_the_long_arm() {
        let s = summarize(&diamond_trace());
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.critical_path, vec![0, 1, 3]);
        // 1000 + 6000 + 1500 = 8500 ns = 8.5 µs.
        assert!((s.critical_path_us - 8.5).abs() < 1e-9);
        // Tasks on the chain have zero slack; the short arm has some.
        for &t in &[0usize, 1, 3] {
            assert_eq!(s.task_stats[t].slack_us, 0.0, "task {t}");
            assert!(s.task_stats[t].on_critical_path);
        }
        assert!(s.task_stats[2].slack_us > 0.0);
        assert!(!s.task_stats[2].on_critical_path);
    }

    #[test]
    fn queue_wait_and_run_breakdown() {
        let s = summarize(&diamond_trace());
        // Task 2 waited 200 ns, task 3 waited 500 ns.
        assert!((s.task_stats[2].queue_wait_us - 0.2).abs() < 1e-9);
        assert!((s.task_stats[3].queue_wait_us - 0.5).abs() < 1e-9);
        assert!((s.total_queue_wait_us - 0.7).abs() < 1e-9);
        assert!((s.total_run_us - (1.0 + 6.0 + 1.8 + 1.5)).abs() < 1e-9);
        assert_eq!(s.workers, 2);
    }

    #[test]
    fn overlap_efficiency_is_hidden_comm_over_comm() {
        let s = summarize(&diamond_trace());
        // Comm span [1200, 3000) fully inside compute span [1000, 7000).
        assert!((s.comm_us - 1.8).abs() < 1e-9);
        assert!((s.compute_us - 6.0).abs() < 1e-9);
        assert!((s.hidden_comm_us - 1.8).abs() < 1e-9);
        let eff = s.measured_overlap_efficiency.unwrap();
        assert!((eff - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        // Comm [0, 4000) vs compute [2000, 6000): half hidden.
        let trace = GraphTrace {
            label: "partial".to_string(),
            wall_ns: 6_000,
            tasks: vec![
                rec(0, "pack", TaskClass::Comm, 0, 0, 4_000, 1),
                rec(1, "interior", TaskClass::Compute, 0, 2_000, 6_000, 2),
            ],
            deps: vec![vec![], vec![]],
        };
        let s = summarize(&trace);
        let eff = s.measured_overlap_efficiency.unwrap();
        assert!((eff - 0.5).abs() < 1e-9);
        // Reconciling against a model prediction records the drift.
        let mut s = s;
        s.reconcile(0.75);
        assert!((s.overlap_drift.unwrap() + 0.25).abs() < 1e-9);
    }

    #[test]
    fn no_comm_tasks_means_no_efficiency() {
        let trace = GraphTrace {
            label: "pure".to_string(),
            wall_ns: 1_000,
            tasks: vec![rec(0, "k", TaskClass::Compute, 0, 0, 1_000, 1)],
            deps: vec![vec![]],
        };
        let s = summarize(&trace);
        assert!(s.measured_overlap_efficiency.is_none());
        assert!(overall_efficiency(&[s]).is_none());
    }

    #[test]
    fn registry_is_bounded_and_drains() {
        clear();
        for i in 0..(MAX_TRACES + 8) {
            record(GraphTrace {
                label: format!("g{i}"),
                wall_ns: 1,
                tasks: Vec::new(),
                deps: Vec::new(),
            });
        }
        assert_eq!(len(), MAX_TRACES);
        let taken = take();
        assert_eq!(taken.len(), MAX_TRACES);
        assert_eq!(taken.last().unwrap().label, format!("g{}", MAX_TRACES + 7));
        assert_eq!(len(), 0);
    }

    #[test]
    fn flow_id_reservation_is_unique() {
        let a = reserve_flow_ids(10);
        let b = reserve_flow_ids(5);
        assert!(b >= a + 10);
    }

    #[test]
    fn summary_json_is_balanced_and_schema_tagged() {
        let s = summarize(&diamond_trace());
        let text = summaries_to_json(&[s]);
        assert!(text.contains("\"schema\": \"exastro.graphtrace.v1\""));
        assert!(text.contains("\"critical_path\""));
        assert!(text.contains("\"slack_us\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
