//! Fixed-bucket log-scale histograms with lock-free recording.
//!
//! Burn cost per zone spans orders of magnitude (§VI "outlier zones": a
//! handful of zones near a detonation front take 100–1000× the BDF steps of
//! a quiescent zone), so buckets are spaced logarithmically: a fixed number
//! of buckets per decade between `lo` and `hi`, plus underflow/overflow
//! bins. Counts are `AtomicU64`, so recording from pool workers needs no
//! lock; `count/sum/min/max` are tracked exactly alongside the buckets.
//!
//! [`Histogram::percentile`] returns the **lower edge** of the bucket
//! containing the requested rank (exact recorded min/max for the
//! underflow/overflow bins), which is exact whenever recorded values sit on
//! bucket edges — the property the unit tests pin down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default low edge of the bucketed range.
pub const DEFAULT_LO: f64 = 1.0;
/// Default high edge of the bucketed range (values ≥ this overflow).
pub const DEFAULT_HI: f64 = 1.0e6;
/// Default bucket resolution: buckets per decade.
pub const DEFAULT_BUCKETS_PER_DECADE: u32 = 10;

/// A fixed-bucket log-scale histogram. Cheap to record into (`&self`, one
/// atomic increment per bucket plus exact count/sum/min/max updates).
pub struct Histogram {
    lo: f64,
    buckets_per_decade: u32,
    nbuckets: usize,
    counts: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits (CAS loop).
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram bucketing `[lo, hi)` with `buckets_per_decade` log-spaced
    /// buckets per decade. `lo` must be positive and `hi > lo`.
    pub fn new(lo: f64, hi: f64, buckets_per_decade: u32) -> Self {
        assert!(lo > 0.0 && hi > lo && buckets_per_decade > 0);
        let decades = (hi / lo).log10();
        let nbuckets = (decades * buckets_per_decade as f64).ceil() as usize;
        Histogram {
            lo,
            buckets_per_decade,
            nbuckets,
            counts: (0..nbuckets).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Lower edge of bucket `i`.
    fn edge(&self, i: usize) -> f64 {
        self.lo * 10f64.powf(i as f64 / self.buckets_per_decade as f64)
    }

    /// Bucket index for `value`, with an edge-rounding correction so values
    /// exactly on a bucket edge always land in the bucket they open.
    fn index(&self, value: f64) -> isize {
        if value < self.lo {
            return -1;
        }
        let raw = ((value / self.lo).log10() * self.buckets_per_decade as f64).floor();
        let mut i = raw as isize;
        // log/pow rounding can put an on-edge value one bucket off in
        // either direction; nudge until edge(i) <= value < edge(i+1).
        while i > 0 && value < self.edge(i as usize) {
            i -= 1;
        }
        while ((i + 1) as usize) <= self.nbuckets && value >= self.edge((i + 1) as usize) {
            i += 1;
        }
        if (i as usize) >= self.nbuckets {
            self.nbuckets as isize // overflow sentinel
        } else {
            i
        }
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        match self.index(value) {
            -1 => self.underflow.fetch_add(1, Ordering::Relaxed),
            i if (i as usize) == self.nbuckets => self.overflow.fetch_add(1, Ordering::Relaxed),
            i => self.counts[i as usize].fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + value);
        atomic_f64_update(&self.min_bits, |m| m.min(value));
        atomic_f64_update(&self.max_bits, |m| m.max(value));
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() / n as f64
        }
    }

    /// Exact minimum recorded value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Exact maximum recorded value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// The lower edge of the bucket holding the `p`-th percentile
    /// observation (0 < p ≤ 100), by cumulative rank over the buckets. The
    /// underflow bin reports the exact recorded minimum and the overflow
    /// bin the exact recorded maximum. `NaN` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        // Rank of the percentile observation, 1-based ceil (nearest-rank).
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow.load(Ordering::Relaxed);
        if cum >= rank {
            return self.min();
        }
        for i in 0..self.nbuckets {
            cum += self.counts[i].load(Ordering::Relaxed);
            if cum >= rank {
                return self.edge(i);
            }
        }
        self.max()
    }

    /// Non-empty buckets as `(lower_edge, count)` pairs, in edge order.
    /// Underflow/overflow are reported with edges `0.0` and the high edge.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let u = self.underflow.load(Ordering::Relaxed);
        if u > 0 {
            out.push((0.0, u));
        }
        for i in 0..self.nbuckets {
            let c = self.counts[i].load(Ordering::Relaxed);
            if c > 0 {
                out.push((self.edge(i), c));
            }
        }
        let o = self.overflow.load(Ordering::Relaxed);
        if o > 0 {
            out.push((self.edge(self.nbuckets), o));
        }
        out
    }

    /// Reset all counts and the exact statistics.
    pub fn clear(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.underflow.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    /// A compact JSON object with the summary statistics and non-empty
    /// buckets (used by `report_json` consumers).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|(e, c)| format!("[{}, {}]", crate::metrics::json_f64(*e), c))
            .collect();
        format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
            self.count(),
            crate::metrics::json_f64(self.sum()),
            crate::metrics::json_f64(self.min()),
            crate::metrics::json_f64(self.max()),
            crate::metrics::json_f64(self.percentile(50.0)),
            crate::metrics::json_f64(self.percentile(90.0)),
            crate::metrics::json_f64(self.percentile(99.0)),
            buckets.join(", "),
        )
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn registry() -> &'static Mutex<HashMap<String, Arc<Histogram>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<Histogram>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide histogram named `name`, created with the default
/// bucketing (`[1, 1e6)`, 10 buckets/decade) on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = registry().lock().unwrap();
    reg.entry(name.to_string())
        .or_insert_with(|| {
            Arc::new(Histogram::new(
                DEFAULT_LO,
                DEFAULT_HI,
                DEFAULT_BUCKETS_PER_DECADE,
            ))
        })
        .clone()
}

/// Names of all registered histograms, sorted.
pub fn histogram_names() -> Vec<String> {
    let mut names: Vec<String> = registry().lock().unwrap().keys().cloned().collect();
    names.sort();
    names
}

/// Clear every registered histogram (handles stay valid).
pub fn reset() {
    for h in registry().lock().unwrap().values() {
        h.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_edge_values() {
        let h = Histogram::new(1.0, 1.0e6, 10);
        // 90 cheap zones at 1.0, 10 outliers at 1000.0 (both on edges).
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), 1.0);
        assert_eq!(h.percentile(90.0), 1.0);
        assert_eq!(h.percentile(99.0), 1000.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        assert!((h.mean() - (90.0 + 10_000.0) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn power_of_ten_edges_index_exactly() {
        let h = Histogram::new(1.0, 1.0e6, 10);
        for v in [1.0, 10.0, 100.0, 1000.0, 1.0e4, 1.0e5] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 6);
        for ((edge, count), v) in buckets.iter().zip([1.0, 10.0, 100.0, 1000.0, 1.0e4, 1.0e5]) {
            assert_eq!(*edge, v, "value {v} must land in its own edge bucket");
            assert_eq!(*count, 1);
        }
    }

    #[test]
    fn underflow_and_overflow_report_exact_extremes() {
        let h = Histogram::new(1.0, 100.0, 4);
        h.record(0.25);
        h.record(5.0);
        h.record(7.5e4);
        assert_eq!(h.count(), 3);
        // p1 hits the underflow bin -> exact min; p99 hits overflow -> max.
        assert_eq!(h.percentile(1.0), 0.25);
        assert_eq!(h.percentile(99.0), 7.5e4);
        assert_eq!(h.nonzero_buckets().first().unwrap().0, 0.0);
    }

    #[test]
    fn nan_and_inf_are_ignored() {
        let h = Histogram::new(1.0, 100.0, 4);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let h = Histogram::new(1.0, 100.0, 4);
        h.record(3.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert!(h.percentile(50.0).is_nan());
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn registry_returns_shared_instances() {
        let a = histogram("test.registry.shared");
        let b = histogram("test.registry.shared");
        a.record(2.0);
        assert_eq!(b.count(), 1);
        assert!(histogram_names().contains(&"test.registry.shared".to_string()));
        a.clear();
    }

    #[test]
    fn json_summary_is_balanced() {
        let h = Histogram::new(1.0, 100.0, 4);
        h.record(2.0);
        let j = h.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"count\": 1"));
    }
}
