//! # exastro-telemetry
//!
//! Structured run telemetry for the `exastro` stack. The end-of-run
//! [`Profiler`](../exastro_parallel/profiler/index.html) table answers
//! "what fraction of the run was the burner" (§IV of the paper) but cannot
//! answer *per-step* questions — did `dt` collapse during a retry storm,
//! is the Newton iteration count drifting, what did the checkpoint cadence
//! cost over time — and its text output cannot be diffed by CI. This crate
//! adds the three machine-readable sinks that can:
//!
//! * [`trace`] — begin/end **trace spans** (thread-attributed, monotonic
//!   timestamps) collected into a lock-sharded ring buffer and exported as
//!   Chrome trace-event JSON, loadable in `chrome://tracing` / Perfetto;
//! * [`metrics`] — a per-step [`StepMetrics`](metrics::StepMetrics) record
//!   appended by the drivers each step through a
//!   [`MetricsSink`](metrics::MetricsSink) (in-memory, JSONL file, null);
//! * [`histogram`] — fixed-bucket log-scale [`Histogram`](histogram::Histogram)s
//!   for per-zone burn cost, plus named [`counters`] for categorical
//!   tallies (ladder rungs, checkpoint bytes).
//!
//! ## Overhead discipline
//!
//! Telemetry is **off by default**. Every hot-path recording helper first
//! checks one relaxed atomic ([`Telemetry::is_enabled`]) and returns
//! immediately when disabled, so an untelemetered run pays one predictable
//! branch per event site. The `ablation_telemetry` bench in
//! `crates/bench` measures the enabled cost on a fig2-style Sedov step
//! (kept < 2% of step time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod graphtrace;
pub mod histogram;
pub mod metrics;
pub mod trace;

pub use counters::{counter_add, counter_get, counters_snapshot};
pub use graphtrace::{GraphSummary, GraphTrace, TaskClass, TaskLabel, TaskRecord, TaskStat};
pub use histogram::{histogram, histogram_names, Histogram};
pub use metrics::{
    JsonlSink, MemorySink, MetricsSink, MultiSink, NullSink, StepMetrics, StepRecorder,
};
pub use trace::{Phase, TraceBuffer, TraceEvent};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide telemetry facade. All methods are associated functions
/// (like `Profiler`), so instrumentation stays one line per site and no
/// handle needs threading through the stack.
pub struct Telemetry;

impl Telemetry {
    /// Turn recording on. Idempotent.
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turn recording off (recording helpers become no-ops). Idempotent.
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// The one branch every hot-path recording site checks first.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Record the beginning of a span named `name` on this thread.
    /// No-op when telemetry is disabled.
    #[inline]
    pub fn trace_begin(name: &str) {
        if Self::is_enabled() {
            trace::global().begin(name);
        }
    }

    /// Record the end of the innermost span named `name` on this thread.
    /// No-op when telemetry is disabled.
    #[inline]
    pub fn trace_end(name: &str) {
        if Self::is_enabled() {
            trace::global().end(name);
        }
    }

    /// Export every recorded span as Chrome trace-event JSON at `path`.
    /// The output is always well-formed: balanced B/E per thread, properly
    /// nested, timestamps monotonic per thread (see [`trace`] for the
    /// export-time repair rules).
    pub fn write_trace(path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        trace::global().write_chrome_trace(path)
    }

    /// Record `value` into the process-wide log-scale histogram `name`.
    /// No-op when telemetry is disabled.
    #[inline]
    pub fn record_hist(name: &str, value: f64) {
        if Self::is_enabled() {
            histogram::histogram(name).record(value);
        }
    }

    /// Record a dependency-arrow tail (`ph: "s"`) bound to `flow_id` on
    /// this thread. Must be emitted inside an open span. No-op when
    /// telemetry is disabled.
    #[inline]
    pub fn trace_flow_start(name: &str, flow_id: u64) {
        if Self::is_enabled() {
            trace::global().flow_start(name, flow_id);
        }
    }

    /// Record a dependency-arrow head (`ph: "f"`) bound to `flow_id` on
    /// this thread. Must be emitted inside an open span, after its
    /// matching [`Telemetry::trace_flow_start`]. No-op when telemetry is
    /// disabled.
    #[inline]
    pub fn trace_flow_finish(name: &str, flow_id: u64) {
        if Self::is_enabled() {
            trace::global().flow_finish(name, flow_id);
        }
    }

    /// Turn per-task graph recording on (implies [`Telemetry::enable`],
    /// since graph spans and flow arrows ride the same trace buffer).
    pub fn enable_graph_trace() {
        Self::enable();
        graphtrace::enable();
    }

    /// Turn per-task graph recording off (plain span tracing, if enabled,
    /// stays on). Idempotent.
    pub fn disable_graph_trace() {
        graphtrace::disable();
    }

    /// The branch `TaskGraph::run` checks before paying for per-task
    /// timestamps.
    #[inline]
    pub fn graph_trace_enabled() -> bool {
        graphtrace::enabled()
    }

    /// Summarize every graph trace recorded so far (critical path, slack,
    /// queue-wait breakdown, measured overlap efficiency) and write the
    /// `exastro.graphtrace.v1` JSON artifact at `path`. Drains the stored
    /// traces.
    pub fn write_graph_summary(path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let summaries: Vec<GraphSummary> = graphtrace::take()
            .iter()
            .map(graphtrace::summarize)
            .collect();
        graphtrace::write_summaries(path, &summaries)
    }

    /// Clear all recorded telemetry (trace events, graph traces,
    /// histograms, counters) without changing the enabled flags.
    pub fn reset() {
        trace::global().clear();
        graphtrace::clear();
        histogram::reset();
        counters::reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_noop() {
        Telemetry::disable();
        Telemetry::trace_begin("noop");
        Telemetry::trace_end("noop");
        Telemetry::record_hist("noop_hist", 3.0);
        assert!(trace::global().events_sorted().is_empty() || !Telemetry::is_enabled());
    }
}
