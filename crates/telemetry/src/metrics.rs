//! Per-step time-series metrics: the [`StepMetrics`] record, the
//! [`MetricsSink`] trait with in-memory / JSONL-file / null impls, and the
//! [`StepRecorder`] handle the drivers embed.
//!
//! One [`StepMetrics`] is appended per *accepted* step by
//! `Castro::advance_level_safe` and `Maestro::advance_safe`. The JSONL
//! form (one JSON object per line) streams safely — a killed run leaves
//! whole, parseable lines — and reproduces the paper's §IV burner-fraction
//! table with a ten-line script (see EXPERIMENTS.md).

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One accepted driver step, in machine-readable form.
///
/// Counter fields are *per step* (deltas), not run totals: summing a column
/// over a `steps.jsonl` file reconciles with the end-of-run profiler /
/// `BurnTally` totals, which the driver integration tests assert.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepMetrics {
    /// Which driver emitted this record (`"castro"` or `"maestro"`).
    pub driver: String,
    /// 1-based accepted-step ordinal within this recorder's run.
    pub step: u64,
    /// Simulation time at the *end* of the step.
    pub t: f64,
    /// The dt actually taken (after any rejection-driven cuts).
    pub dt: f64,
    /// Wall-clock nanoseconds for the step (including rejected attempts).
    pub wall_ns: u64,
    /// Zones advanced this step (one count per accepted advance).
    pub zones: u64,
    /// Throughput in zones per microsecond (the paper's Figures 2–4 unit).
    pub zones_per_us: f64,
    /// Newton iterations spent in the burner this step.
    pub newton_iters: u64,
    /// BDF steps taken by the burner this step.
    pub bdf_steps: u64,
    /// Burn retry-ladder attempts beyond the first (all rungs).
    pub burn_retries: u64,
    /// Zones recovered on the relaxed-tolerance rung.
    pub recovered_relaxed: u64,
    /// Zones recovered on the subcycling rung.
    pub recovered_subcycle: u64,
    /// Zones recovered on the offload rung.
    pub recovered_offload: u64,
    /// Whole-step rejections (snapshot restore + dt cut) before acceptance.
    pub step_rejections: u64,
    /// Checkpoint bytes written since the previous record.
    pub checkpoint_bytes: u64,
    /// Arena live bytes after the step (0 when the driver has no arena).
    pub arena_live_bytes: u64,
    /// Arena peak bytes so far (0 when the driver has no arena).
    pub arena_peak_bytes: u64,
}

/// Format an `f64` as a JSON value (`null` for non-finite).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure a numeric token JSON parsers accept (Rust never prints
        // leading dots or bare exponents, so plain Display is already
        // valid); keep it as-is.
        s
    } else {
        "null".to_string()
    }
}

impl StepMetrics {
    /// This record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"driver\": \"{}\", \"step\": {}, \"t\": {}, \"dt\": {}, \"wall_ns\": {}, \"zones\": {}, \"zones_per_us\": {}, \"newton_iters\": {}, \"bdf_steps\": {}, \"burn_retries\": {}, \"recovered_relaxed\": {}, \"recovered_subcycle\": {}, \"recovered_offload\": {}, \"step_rejections\": {}, \"checkpoint_bytes\": {}, \"arena_live_bytes\": {}, \"arena_peak_bytes\": {}}}",
            self.driver,
            self.step,
            json_f64(self.t),
            json_f64(self.dt),
            self.wall_ns,
            self.zones,
            json_f64(self.zones_per_us),
            self.newton_iters,
            self.bdf_steps,
            self.burn_retries,
            self.recovered_relaxed,
            self.recovered_subcycle,
            self.recovered_offload,
            self.step_rejections,
            self.checkpoint_bytes,
            self.arena_live_bytes,
            self.arena_peak_bytes,
        )
    }
}

/// Destination for per-step records. Implementations must be safe to call
/// from the driver thread each step (`&self`, internally synchronized).
pub trait MetricsSink: Send + Sync {
    /// Append one step record. Recording must never fail a run, so errors
    /// are deferred: file-backed sinks remember the first I/O error and
    /// surface it from [`MetricsSink::flush`].
    fn record(&self, m: &StepMetrics);
    /// Flush any buffering to the underlying medium, reporting any I/O
    /// error recorded since the last flush.
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Keeps every record in memory; the test and reconciliation sink.
#[derive(Default)]
pub struct MemorySink {
    records: Mutex<Vec<StepMetrics>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every record so far.
    pub fn snapshot(&self) -> Vec<StepMetrics> {
        self.records.lock().unwrap().clone()
    }

    /// Drain and return every record so far.
    pub fn take(&self) -> Vec<StepMetrics> {
        std::mem::take(&mut self.records.lock().unwrap())
    }
}

impl MetricsSink for MemorySink {
    fn record(&self, m: &StepMetrics) {
        self.records.lock().unwrap().push(m.clone());
    }
}

/// Appends records as JSON Lines to a file (one object per line, flushed
/// per record so a killed run leaves whole lines).
///
/// I/O errors never interrupt the run: `record` remembers the *first*
/// error (sticky) and keeps accepting records; the error surfaces from
/// [`MetricsSink::flush`] or [`JsonlSink::take_error`].
pub struct JsonlSink {
    file: Mutex<std::io::BufWriter<std::fs::File>>,
    error: Mutex<Option<String>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream records to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            file: Mutex::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
            error: Mutex::new(None),
        })
    }

    fn remember(&self, e: std::io::Error) {
        let mut slot = self.error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e.to_string());
        }
    }

    /// Take (and clear) the first I/O error seen since the last call.
    pub fn take_error(&self) -> Option<String> {
        self.error.lock().unwrap().take()
    }
}

impl MetricsSink for JsonlSink {
    fn record(&self, m: &StepMetrics) {
        let mut f = self.file.lock().unwrap();
        let r = writeln!(f, "{}", m.to_json()).and_then(|()| f.flush());
        drop(f);
        if let Err(e) = r {
            self.remember(e);
        }
    }

    fn flush(&self) -> std::io::Result<()> {
        let r = self.file.lock().unwrap().flush();
        if let Err(e) = r {
            self.remember(e);
        }
        match self.error.lock().unwrap().clone() {
            Some(msg) => Err(std::io::Error::other(msg)),
            None => Ok(()),
        }
    }
}

/// Fans every record out to several sinks — e.g. a per-job JSONL stream
/// for operators *and* an in-memory sink the service aggregates into its
/// report, without the driver knowing there is more than one consumer.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Arc<dyn MetricsSink>>,
}

impl MultiSink {
    /// A fan-out over `sinks` (empty is allowed and records nothing).
    pub fn new(sinks: Vec<Arc<dyn MetricsSink>>) -> Self {
        MultiSink { sinks }
    }
}

impl MetricsSink for MultiSink {
    fn record(&self, m: &StepMetrics) {
        for s in &self.sinks {
            s.record(m);
        }
    }

    fn flush(&self) -> std::io::Result<()> {
        // Flush every member even when an early one fails, then report the
        // aggregate instead of silently swallowing per-sink errors.
        let errors: Vec<String> = self
            .sinks
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.flush().err().map(|e| format!("sink {i}: {e}")))
            .collect();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(std::io::Error::other(errors.join("; ")))
        }
    }
}

/// Discards everything (the explicit "metrics off" sink).
#[derive(Default, Clone, Copy)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn record(&self, _m: &StepMetrics) {}
}

/// The handle a driver embeds: owns the optional sink, the step ordinal,
/// and the checkpoint-bytes watermark used to turn the process-wide
/// `checkpoint.bytes` counter into per-step deltas.
///
/// `Default` is the inert state (no sink, zero cost per step beyond one
/// `Option` check), so drivers constructed by struct literal or `new()`
/// stay telemetry-free until `attach_sink` is called.
#[derive(Default)]
pub struct StepRecorder {
    sink: Option<Arc<dyn MetricsSink>>,
    step: AtomicU64,
    /// Run time accumulated over recorded steps, as `f64` bits.
    time_bits: AtomicU64,
    ckpt_bytes_seen: AtomicU64,
}

impl StepRecorder {
    /// An inert recorder (no sink attached).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach `sink` and reset the step ordinal; subsequent accepted steps
    /// are recorded. The checkpoint watermark starts at the counter's
    /// current value, so pre-attach checkpoints are not attributed.
    pub fn attach_sink(&mut self, sink: Arc<dyn MetricsSink>) {
        self.sink = Some(sink);
        self.step.store(0, Ordering::Relaxed);
        self.time_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.ckpt_bytes_seen.store(
            crate::counters::counter_get("checkpoint.bytes"),
            Ordering::Relaxed,
        );
    }

    /// Whether a sink is attached (drivers skip metric assembly when not).
    pub fn is_active(&self) -> bool {
        self.sink.is_some()
    }

    /// Record one accepted step. Fills in the step ordinal, accumulates
    /// `t` from the recorded `dt` values (a run clock starting at 0 when
    /// the sink was attached), derives `zones_per_us` from
    /// `zones`/`wall_ns`, and charges the `checkpoint.bytes` counter delta
    /// since the last record (checkpoints written between steps attribute
    /// to the following step, so run totals still reconcile). No-op
    /// without a sink.
    pub fn record(&self, mut m: StepMetrics) {
        let Some(sink) = &self.sink else { return };
        m.step = self.step.fetch_add(1, Ordering::Relaxed) + 1;
        let t = f64::from_bits(self.time_bits.load(Ordering::Relaxed)) + m.dt;
        self.time_bits.store(t.to_bits(), Ordering::Relaxed);
        m.t = t;
        m.zones_per_us = if m.wall_ns > 0 {
            m.zones as f64 / (m.wall_ns as f64 / 1_000.0)
        } else {
            f64::NAN
        };
        let now = crate::counters::counter_get("checkpoint.bytes");
        let seen = self.ckpt_bytes_seen.swap(now, Ordering::Relaxed);
        m.checkpoint_bytes = now.saturating_sub(seen);
        sink.record(&m);
    }

    /// Flush the attached sink, if any, surfacing deferred I/O errors.
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_sink_fans_out_to_every_member() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        let mut rec = StepRecorder::new();
        rec.attach_sink(Arc::new(multi));
        rec.record(StepMetrics {
            driver: "castro".into(),
            dt: 0.5,
            wall_ns: 1_000,
            zones: 4,
            ..Default::default()
        });
        rec.record(StepMetrics {
            driver: "castro".into(),
            dt: 0.5,
            wall_ns: 2_000,
            zones: 4,
            ..Default::default()
        });
        assert_eq!(a.snapshot().len(), 2);
        assert_eq!(a.snapshot(), b.snapshot());
        // Ordinals are assigned once by the recorder, not per sink.
        assert_eq!(a.snapshot()[1].step, 2);
        // An empty fan-out records nothing and must not panic.
        MultiSink::new(vec![]).record(&StepMetrics::default());
    }

    #[test]
    fn jsonl_round_trip_and_memory_sink() {
        let sink = Arc::new(MemorySink::new());
        let mut rec = StepRecorder::new();
        assert!(!rec.is_active());
        rec.record(StepMetrics::default()); // inert: no sink yet
        rec.attach_sink(sink.clone());
        assert!(rec.is_active());
        rec.record(StepMetrics {
            driver: "castro".into(),
            dt: 0.25,
            wall_ns: 2_000,
            zones: 8,
            ..Default::default()
        });
        rec.record(StepMetrics {
            driver: "castro".into(),
            dt: 0.5,
            ..Default::default()
        });
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].step, 1);
        assert_eq!(recs[1].step, 2);
        // t accumulates the recorded dt values.
        assert_eq!(recs[0].t, 0.25);
        assert_eq!(recs[1].t, 0.75);
        assert!((recs[0].zones_per_us - 4.0).abs() < 1e-12);
        let line = recs[0].to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"driver\": \"castro\""));
        assert!(line.contains("\"zones\": 8"));
        assert_eq!(line.matches('{').count(), 1);
    }

    #[test]
    fn checkpoint_bytes_are_per_step_deltas() {
        let sink = Arc::new(MemorySink::new());
        let mut rec = StepRecorder::new();
        crate::counters::counter_add("checkpoint.bytes", 100); // pre-attach
        rec.attach_sink(sink.clone());
        crate::counters::counter_add("checkpoint.bytes", 40);
        rec.record(StepMetrics::default());
        rec.record(StepMetrics::default());
        crate::counters::counter_add("checkpoint.bytes", 5);
        rec.record(StepMetrics::default());
        let recs = sink.snapshot();
        assert_eq!(recs[0].checkpoint_bytes, 40);
        assert_eq!(recs[1].checkpoint_bytes, 0);
        assert_eq!(recs[2].checkpoint_bytes, 5);
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let m = StepMetrics {
            t: f64::NAN,
            zones_per_us: f64::INFINITY,
            ..Default::default()
        };
        let j = m.to_json();
        assert!(j.contains("\"t\": null"));
        assert!(j.contains("\"zones_per_us\": null"));
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn jsonl_create_fails_on_unwritable_path() {
        let dir = std::env::temp_dir().join(format!("exastro-ro-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut perms = std::fs::metadata(&dir).unwrap().permissions();
        use std::os::unix::fs::PermissionsExt;
        perms.set_mode(0o555); // read + execute, no write
        std::fs::set_permissions(&dir, perms.clone()).unwrap();
        let result = JsonlSink::create(dir.join("steps.jsonl"));
        // Root bypasses mode bits on some filesystems; only assert when
        // the OS actually enforced the read-only directory.
        if std::fs::File::create(dir.join("probe")).is_err() {
            assert!(result.is_err(), "create in a read-only dir must fail");
        }
        perms.set_mode(0o755);
        std::fs::set_permissions(&dir, perms).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_write_errors_are_sticky_and_surface_at_flush() {
        // /dev/full accepts the open but fails every write with ENOSPC.
        if !Path::new("/dev/full").exists() {
            return;
        }
        let sink = JsonlSink::create("/dev/full").unwrap();
        sink.record(&StepMetrics::default());
        sink.record(&StepMetrics::default());
        let err = sink.flush().expect_err("writes to /dev/full must fail");
        assert!(!err.to_string().is_empty());
        // The error was taken by flush's report but stays until taken.
        assert!(sink.take_error().is_some());
        assert!(sink.take_error().is_none(), "take_error drains the slot");
        // After draining, flush succeeds again (BufWriter has given up
        // its buffered line to the failed flush attempts).
        let _ = sink.flush();
    }

    #[test]
    fn multi_sink_propagates_member_flush_errors() {
        if !Path::new("/dev/full").exists() {
            return;
        }
        let good = Arc::new(MemorySink::new());
        let bad = Arc::new(JsonlSink::create("/dev/full").unwrap());
        let multi = MultiSink::new(vec![good.clone(), bad]);
        multi.record(&StepMetrics::default());
        let err = multi.flush().expect_err("one failing member must surface");
        assert!(err.to_string().contains("sink 1"));
        // The healthy member still received the record.
        assert_eq!(good.snapshot().len(), 1);
    }

    #[test]
    fn dropped_sink_has_already_persisted_lines() {
        let dir = std::env::temp_dir().join(format!("exastro-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("steps.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&StepMetrics::default());
            // Dropped without an explicit flush: record() flushes per line,
            // so a killed run still leaves whole, parseable lines.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_file_sink_writes_one_line_per_record() {
        let dir = std::env::temp_dir().join(format!("exastro-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("steps.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&StepMetrics::default());
        sink.record(&StepMetrics::default());
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
