//! Trace spans: a lock-sharded ring buffer of begin/end events with a
//! Chrome trace-event JSON exporter.
//!
//! Every span is two events — `B` (begin) and `E` (end) — attributed to a
//! small stable per-thread id and stamped with nanoseconds since a
//! process-wide monotonic epoch. Events land in the shard owned by the
//! recording thread (`tid % nshards`), so concurrent threads almost never
//! contend on a lock, and the recording cost is one mutex acquire plus a
//! `VecDeque` push.
//!
//! ## Bounded memory, well-formed output
//!
//! Each shard is a fixed-capacity ring: when full, the **oldest** event in
//! the shard is evicted (and counted in [`TraceBuffer::dropped`]). Because
//! eviction removes a per-thread *prefix* of events, the survivors of any
//! thread are a suffix of a properly nested sequence, and the exporter can
//! repair it deterministically:
//!
//! * an `E` arriving while the replayed stack is empty lost its `B` to
//!   eviction → skipped;
//! * a `B` still open at export time (a live region, or an `E` that was
//!   never recorded) → closed with a synthetic `E` at the latest observed
//!   timestamp.
//!
//! The exported JSON is therefore always loadable in `chrome://tracing` /
//! Perfetto *and* passes the strict CI schema check: per-thread balanced
//! B/E, LIFO nesting, monotonic timestamps.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Span or flow phase (Chrome trace-event `ph` values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Flow start (`"s"`) — the tail of a dependency arrow, emitted inside
    /// the predecessor's span.
    FlowStart,
    /// Flow finish (`"f"`) — the head of a dependency arrow, emitted inside
    /// the successor's span.
    FlowFinish,
}

impl Phase {
    /// The Chrome trace-event `ph` string.
    pub fn ph(&self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::FlowStart => "s",
            Phase::FlowFinish => "f",
        }
    }

    /// True for the flow phases (`"s"` / `"f"`).
    pub fn is_flow(&self) -> bool {
        matches!(self, Phase::FlowStart | Phase::FlowFinish)
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (a profiler region name or pool job label).
    pub name: String,
    /// Stable small per-thread id.
    pub tid: u64,
    /// Nanoseconds since the buffer's monotonic epoch.
    pub ts_ns: u64,
    /// Begin, end, or a flow endpoint.
    pub phase: Phase,
    /// Global recording sequence number (total order tiebreak).
    pub seq: u64,
    /// Flow binding id — pairs a [`Phase::FlowStart`] with its
    /// [`Phase::FlowFinish`]. Zero (and ignored) for span events.
    pub flow_id: u64,
}

const NSHARDS: usize = 16;
const DEFAULT_CAPACITY_PER_SHARD: usize = 1 << 15;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable trace id (assigned on first use, starts at 1).
pub fn thread_trace_id() -> u64 {
    TID.with(|t| *t)
}

/// A lock-sharded bounded ring of trace events.
pub struct TraceBuffer {
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
    capacity_per_shard: usize,
    epoch: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events total, split evenly over
    /// the shards.
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / NSHARDS).max(4);
        TraceBuffer {
            shards: (0..NSHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_shard.min(1024))))
                .collect(),
            capacity_per_shard: per_shard,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, name: &str, phase: Phase, flow_id: u64) {
        let tid = thread_trace_id();
        let ev = TraceEvent {
            name: name.to_string(),
            tid,
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            phase,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            flow_id,
        };
        let mut shard = self.shards[(tid as usize) % NSHARDS].lock().unwrap();
        if shard.len() >= self.capacity_per_shard {
            shard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(ev);
    }

    /// Record a span begin on the calling thread.
    pub fn begin(&self, name: &str) {
        self.push(name, Phase::Begin, 0);
    }

    /// Record a span end on the calling thread.
    pub fn end(&self, name: &str) {
        self.push(name, Phase::End, 0);
    }

    /// Record a flow start (dependency-arrow tail) on the calling thread.
    /// Must be emitted inside an open span; flow events recorded outside a
    /// span are dropped by the export-time repair.
    pub fn flow_start(&self, name: &str, flow_id: u64) {
        self.push(name, Phase::FlowStart, flow_id);
    }

    /// Record a flow finish (dependency-arrow head) on the calling thread.
    /// Must be emitted inside an open span, after its matching
    /// [`TraceBuffer::flow_start`].
    pub fn flow_finish(&self, name: &str, flow_id: u64) {
        self.push(name, Phase::FlowFinish, flow_id);
    }

    /// Events evicted by ring overflow since the last [`TraceBuffer::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discard all recorded events and reset the drop counter (the epoch is
    /// kept, so timestamps stay monotonic across clears).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// All events after the export-time repair (see module docs): balanced
    /// B/E per thread, LIFO-nested, sorted by `(ts_ns, seq)`. Flow events
    /// survive only when they were recorded inside an open span *and* both
    /// endpoints of the flow id survive with the start ordered before the
    /// finish — dangling dependency arrows are dropped, never half-drawn.
    pub fn events_sorted(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for s in &self.shards {
            all.extend(s.lock().unwrap().iter().cloned());
        }
        all.sort_by_key(|e| (e.ts_ns, e.seq));
        let max_ts = all.last().map(|e| e.ts_ns).unwrap_or(0);
        let mut max_seq = all.last().map(|e| e.seq + 1).unwrap_or(0);
        // Replay per-thread stacks: drop orphan E events (their B was
        // evicted), close still-open B events with synthetic E events.
        let mut stacks: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
        let mut out: Vec<TraceEvent> = Vec::with_capacity(all.len());
        for ev in all {
            match ev.phase {
                Phase::Begin => {
                    stacks
                        .entry(ev.tid)
                        .or_default()
                        .push((ev.name.clone(), out.len() as u64));
                    out.push(ev);
                }
                Phase::End => {
                    let stack = stacks.entry(ev.tid).or_default();
                    match stack.last() {
                        Some((top, _)) if *top == ev.name => {
                            stack.pop();
                            out.push(ev);
                        }
                        // Orphan E (B evicted) or name mismatch: skip to
                        // keep the output balanced and nested.
                        _ => {}
                    }
                }
                Phase::FlowStart | Phase::FlowFinish => {
                    // A flow endpoint binds to the enclosing span; one that
                    // lost its span to eviction has nothing to attach to.
                    let enclosed = stacks.get(&ev.tid).is_some_and(|s| !s.is_empty());
                    if enclosed {
                        out.push(ev);
                    }
                }
            }
        }
        for (tid, stack) in stacks {
            for (name, _) in stack.into_iter().rev() {
                out.push(TraceEvent {
                    name,
                    tid,
                    ts_ns: max_ts,
                    phase: Phase::End,
                    seq: max_seq,
                    flow_id: 0,
                });
                max_seq += 1;
            }
        }
        // Pair-filter flows: an id must keep exactly one start and one
        // finish, with the start recorded no later than the finish.
        let mut starts: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut finishes: HashMap<u64, (u64, u64)> = HashMap::new();
        for ev in &out {
            let slot = match ev.phase {
                Phase::FlowStart => &mut starts,
                Phase::FlowFinish => &mut finishes,
                _ => continue,
            };
            slot.entry(ev.flow_id).or_insert((ev.ts_ns, ev.seq));
        }
        out.retain(|ev| {
            if !ev.phase.is_flow() {
                return true;
            }
            match (starts.get(&ev.flow_id), finishes.get(&ev.flow_id)) {
                (Some(&s), Some(&f)) => {
                    // Keep only the first occurrence of each endpoint.
                    s <= f && (ev.ts_ns, ev.seq) == if ev.phase == Phase::FlowStart { s } else { f }
                }
                _ => false,
            }
        });
        out.sort_by_key(|e| (e.ts_ns, e.seq));
        out
    }

    /// Write the repaired event stream as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form). `ts` is microseconds with
    /// nanosecond fraction, `pid` is constant 1, `tid` is the stable
    /// per-thread id. Returns the path written.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let path = path.as_ref().to_path_buf();
        let events = self.events_sorted();
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{{")?;
        writeln!(f, "  \"displayTimeUnit\": \"ns\",")?;
        writeln!(f, "  \"droppedEventCount\": {},", self.dropped())?;
        writeln!(f, "  \"traceEvents\": [")?;
        for (i, ev) in events.iter().enumerate() {
            let sep = if i + 1 == events.len() { "" } else { "," };
            // Flow endpoints carry the binding id; "bp": "e" attaches the
            // arrow head to the enclosing slice (Perfetto convention).
            let flow = match ev.phase {
                Phase::FlowStart => format!(", \"id\": {}", ev.flow_id),
                Phase::FlowFinish => format!(", \"id\": {}, \"bp\": \"e\"", ev.flow_id),
                _ => String::new(),
            };
            writeln!(
                f,
                "    {{\"name\": \"{}\", \"cat\": \"exastro\", \"ph\": \"{}\", \"ts\": {}.{:03}, \"pid\": 1, \"tid\": {}{flow}}}{sep}",
                json_escape(&ev.name),
                ev.phase.ph(),
                ev.ts_ns / 1_000,
                ev.ts_ns % 1_000,
                ev.tid,
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        f.flush()?;
        Ok(path)
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(NSHARDS * DEFAULT_CAPACITY_PER_SHARD)
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The process-wide trace buffer used by the `Telemetry` facade.
pub fn global() -> &'static TraceBuffer {
    static GLOBAL: OnceLock<TraceBuffer> = OnceLock::new();
    GLOBAL.get_or_init(TraceBuffer::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_well_formed(events: &[TraceEvent]) {
        let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
        let mut last_ts: HashMap<u64, u64> = HashMap::new();
        let mut flow_starts: HashMap<u64, usize> = HashMap::new();
        let mut flow_finishes: HashMap<u64, usize> = HashMap::new();
        for ev in events {
            let prev = last_ts.entry(ev.tid).or_insert(0);
            assert!(ev.ts_ns >= *prev, "timestamps regress on tid {}", ev.tid);
            *prev = ev.ts_ns;
            let stack = stacks.entry(ev.tid).or_default();
            match ev.phase {
                Phase::Begin => stack.push(&ev.name),
                Phase::End => {
                    let top = stack.pop().expect("E with empty stack");
                    assert_eq!(top, ev.name, "E does not match innermost B");
                }
                Phase::FlowStart | Phase::FlowFinish => {
                    assert!(
                        !stack.is_empty(),
                        "flow event outside any span on tid {}",
                        ev.tid
                    );
                    let slot = if ev.phase == Phase::FlowStart {
                        &mut flow_starts
                    } else {
                        &mut flow_finishes
                    };
                    *slot.entry(ev.flow_id).or_insert(0) += 1;
                }
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "unbalanced spans on tid {tid}: {stack:?}");
        }
        assert_eq!(
            flow_starts.keys().collect::<std::collections::HashSet<_>>(),
            flow_finishes
                .keys()
                .collect::<std::collections::HashSet<_>>(),
            "every flow id must keep both endpoints"
        );
        for (id, n) in flow_starts.iter().chain(flow_finishes.iter()) {
            assert_eq!(*n, 1, "flow id {id} has a duplicated endpoint");
        }
    }

    #[test]
    fn spans_nest_and_export_balanced() {
        let buf = TraceBuffer::new(1024);
        buf.begin("step");
        buf.begin("hydro");
        buf.end("hydro");
        buf.begin("burn");
        buf.end("burn");
        buf.end("step");
        let events = buf.events_sorted();
        assert_eq!(events.len(), 6);
        assert_well_formed(&events);
    }

    #[test]
    fn open_spans_are_closed_at_export() {
        let buf = TraceBuffer::new(1024);
        buf.begin("outer");
        buf.begin("inner");
        // Neither span closed: export must synthesize both E events.
        let events = buf.events_sorted();
        assert_eq!(events.len(), 4);
        assert_well_formed(&events);
    }

    #[test]
    fn eviction_keeps_output_balanced() {
        // Tiny ring: force eviction of early B events, leaving orphan Es.
        let buf = TraceBuffer::new(NSHARDS * 4);
        for i in 0..200 {
            buf.begin(&format!("span{i}"));
            buf.end(&format!("span{i}"));
        }
        assert!(buf.dropped() > 0);
        assert_well_formed(&buf.events_sorted());
    }

    #[test]
    fn cross_thread_events_are_attributed_separately() {
        let buf = std::sync::Arc::new(TraceBuffer::new(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = buf.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    b.begin(&format!("t{t}-{i}"));
                    b.end(&format!("t{t}-{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = buf.events_sorted();
        assert_eq!(events.len(), 4 * 20 * 2);
        assert_well_formed(&events);
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "each thread gets its own tid");
    }

    #[test]
    fn flow_events_pair_up_and_orphans_are_dropped() {
        let buf = TraceBuffer::new(1024);
        buf.begin("pack");
        buf.flow_start("dep", 7);
        buf.end("pack");
        buf.begin("unpack");
        buf.flow_finish("dep", 7);
        // Flow 9 has a finish but no start: must be dropped.
        buf.flow_finish("dep", 9);
        buf.end("unpack");
        // Flow 11 is emitted outside any span: must be dropped.
        buf.flow_start("dep", 11);
        let events = buf.events_sorted();
        assert_well_formed(&events);
        let flows: Vec<_> = events.iter().filter(|e| e.phase.is_flow()).collect();
        assert_eq!(flows.len(), 2);
        assert!(flows.iter().all(|e| e.flow_id == 7));
        assert_eq!(flows[0].phase, Phase::FlowStart);
        assert_eq!(flows[1].phase, Phase::FlowFinish);
    }

    #[test]
    fn flow_export_carries_id_and_binding_point() {
        let buf = TraceBuffer::new(1024);
        buf.begin("a");
        buf.flow_start("dep", 42);
        buf.end("a");
        buf.begin("b");
        buf.flow_finish("dep", 42);
        buf.end("b");
        let dir = std::env::temp_dir().join(format!("exastro-flow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = buf.write_chrome_trace(dir.join("f.json")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ph\": \"s\", \"ts\""));
        assert!(text.contains("\"id\": 42"));
        assert!(text.contains("\"bp\": \"e\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chrome_export_is_valid_jsonish() {
        let buf = TraceBuffer::new(1024);
        buf.begin("a \"quoted\" name\n");
        buf.end("a \"quoted\" name\n");
        let dir = std::env::temp_dir().join(format!("exastro-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = buf.write_chrome_trace(dir.join("t.json")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\\u000a"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
