//! Property tests: every exported trace is well-formed, no matter how
//! adversarial the recorded span stream was (unbalanced, interleaved
//! across threads, evicted by a tiny ring).

use exastro_telemetry::{Phase, TraceBuffer, TraceEvent};
use proptest::prelude::*;
use std::collections::HashMap;

/// The invariants the CI schema check enforces on Chrome trace output:
/// per-thread monotonic timestamps, LIFO nesting, balanced B/E.
fn check_well_formed(events: &[TraceEvent]) -> Result<(), String> {
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    for ev in events {
        let prev = last_ts.entry(ev.tid).or_insert(0);
        if ev.ts_ns < *prev {
            return Err(format!("timestamp regression on tid {}", ev.tid));
        }
        *prev = ev.ts_ns;
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase {
            Phase::Begin => stack.push(ev.name.clone()),
            Phase::End => match stack.pop() {
                Some(top) if top == ev.name => {}
                Some(top) => return Err(format!("E {} closes B {top}", ev.name)),
                None => return Err(format!("E {} with empty stack", ev.name)),
            },
        }
    }
    for (tid, stack) in stacks {
        if !stack.is_empty() {
            return Err(format!("unclosed spans on tid {tid}: {stack:?}"));
        }
    }
    Ok(())
}

/// Replay an op stream on one thread: op % 3 == 0 or 1 biases toward
/// begin/end pairs, 2 emits a stray end (adversarial unbalance).
fn replay(buf: &TraceBuffer, ops: &[u8]) {
    let mut depth = 0u32;
    for (i, &op) in ops.iter().enumerate() {
        match op % 4 {
            0 | 1 => {
                buf.begin(&format!("span{}", i % 7));
                depth += 1;
            }
            2 if depth > 0 => {
                // Close the innermost span by emitting a matching name:
                // we don't track names here, so emit a mismatched one
                // sometimes — the exporter must cope either way.
                buf.end(&format!("span{}", i % 7));
                depth -= 1;
            }
            _ => {
                // Stray end with no open span.
                buf.end("stray");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adversarial_streams_export_well_formed(
        ops in prop::collection::vec(0u8..=255, 0..200),
        capacity in 64usize..2048,
    ) {
        let buf = TraceBuffer::new(capacity);
        replay(&buf, &ops);
        let events = buf.events_sorted();
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
    }

    #[test]
    fn balanced_streams_survive_intact_without_eviction(
        depth in 1usize..20,
    ) {
        // A properly nested stream in a big-enough buffer must export
        // exactly as recorded: 2*depth events, no drops, no synthesis.
        let buf = TraceBuffer::new(1 << 16);
        for d in 0..depth {
            buf.begin(&format!("level{d}"));
        }
        for d in (0..depth).rev() {
            buf.end(&format!("level{d}"));
        }
        prop_assert_eq!(buf.dropped(), 0);
        let events = buf.events_sorted();
        prop_assert_eq!(events.len(), 2 * depth);
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
        // Nesting order preserved: first B is level0, last E is level0.
        prop_assert_eq!(events.first().unwrap().name.as_str(), "level0");
        prop_assert_eq!(events.last().unwrap().name.as_str(), "level0");
    }

    #[test]
    fn tiny_rings_with_heavy_eviction_stay_well_formed(
        nspans in 50usize..400,
    ) {
        // Capacity far below the recorded volume: most B events evict,
        // leaving orphan E events the exporter must drop.
        let buf = TraceBuffer::new(64);
        for i in 0..nspans {
            buf.begin(&format!("s{i}"));
            buf.end(&format!("s{i}"));
        }
        prop_assert!(buf.dropped() > 0);
        let events = buf.events_sorted();
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
    }

    #[test]
    fn multithreaded_streams_export_well_formed(
        nthreads in 2usize..6,
        ops in prop::collection::vec(0u8..=255, 10..120),
    ) {
        let buf = std::sync::Arc::new(TraceBuffer::new(4096));
        let mut handles = Vec::new();
        for t in 0..nthreads {
            let b = buf.clone();
            let my_ops: Vec<u8> = ops.iter().map(|&o| o.wrapping_add(t as u8)).collect();
            handles.push(std::thread::spawn(move || replay(&b, &my_ops)));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = buf.events_sorted();
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
    }

    #[test]
    fn exported_json_is_structurally_valid(
        ops in prop::collection::vec(0u8..=255, 0..150),
    ) {
        let buf = TraceBuffer::new(1024);
        replay(&buf, &ops);
        let dir = std::env::temp_dir()
            .join(format!("exastro-ptrace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = buf.write_chrome_trace(dir.join("p.json")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(text.contains("\"traceEvents\""));
        prop_assert_eq!(text.matches('{').count(), text.matches('}').count());
        prop_assert_eq!(text.matches('[').count(), text.matches(']').count());
        // Every event line carries the four required keys.
        for line in text.lines().filter(|l| l.trim_start().starts_with("{\"name\"")) {
            for key in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
                prop_assert!(line.contains(key), "event line missing {}: {}", key, line);
            }
        }
    }
}
