//! Property tests: every exported trace is well-formed, no matter how
//! adversarial the recorded span stream was (unbalanced, interleaved
//! across threads, evicted by a tiny ring, flow arrows with missing
//! endpoints).

use exastro_telemetry::{Phase, TraceBuffer, TraceEvent};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// The invariants the CI schema check enforces on Chrome trace output:
/// per-thread monotonic timestamps, LIFO nesting, balanced B/E, and flow
/// endpoints that land inside spans and pair up exactly (one `s` then one
/// `f` per id, start ordered no later than the finish).
fn check_well_formed(events: &[TraceEvent]) -> Result<(), String> {
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut flow_starts: HashMap<u64, usize> = HashMap::new();
    let mut flow_finishes: HashMap<u64, usize> = HashMap::new();
    let mut started: HashSet<u64> = HashSet::new();
    for ev in events {
        let prev = last_ts.entry(ev.tid).or_insert(0);
        if ev.ts_ns < *prev {
            return Err(format!("timestamp regression on tid {}", ev.tid));
        }
        *prev = ev.ts_ns;
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase {
            Phase::Begin => stack.push(ev.name.clone()),
            Phase::End => match stack.pop() {
                Some(top) if top == ev.name => {}
                Some(top) => return Err(format!("E {} closes B {top}", ev.name)),
                None => return Err(format!("E {} with empty stack", ev.name)),
            },
            Phase::FlowStart => {
                if stack.is_empty() {
                    return Err(format!("flow start {} outside any span", ev.flow_id));
                }
                *flow_starts.entry(ev.flow_id).or_insert(0) += 1;
                started.insert(ev.flow_id);
            }
            Phase::FlowFinish => {
                if stack.is_empty() {
                    return Err(format!("flow finish {} outside any span", ev.flow_id));
                }
                if !started.contains(&ev.flow_id) {
                    return Err(format!("flow finish {} precedes its start", ev.flow_id));
                }
                *flow_finishes.entry(ev.flow_id).or_insert(0) += 1;
            }
        }
    }
    for (tid, stack) in stacks {
        if !stack.is_empty() {
            return Err(format!("unclosed spans on tid {tid}: {stack:?}"));
        }
    }
    for (id, n) in &flow_starts {
        if *n != 1 || flow_finishes.get(id) != Some(&1) {
            return Err(format!("flow id {id} does not pair exactly once"));
        }
    }
    for id in flow_finishes.keys() {
        if !flow_starts.contains_key(id) {
            return Err(format!("flow finish {id} kept without its start"));
        }
    }
    Ok(())
}

/// Replay an op stream on one thread: ops bias toward begin/end pairs,
/// with stray ends and dangling flow endpoints mixed in (adversarial
/// unbalance). `flow_base` keeps ids distinct across threads.
fn replay(buf: &TraceBuffer, ops: &[u8], flow_base: u64) {
    let mut depth = 0u32;
    for (i, &op) in ops.iter().enumerate() {
        match op % 8 {
            0 | 1 | 4 => {
                buf.begin(&format!("span{}", i % 7));
                depth += 1;
            }
            2 | 5 if depth > 0 => {
                // Close the innermost span by emitting a matching name:
                // we don't track names here, so emit a mismatched one
                // sometimes — the exporter must cope either way.
                buf.end(&format!("span{}", i % 7));
                depth -= 1;
            }
            6 => {
                // A flow start, possibly dangling (no finish ever) and
                // possibly outside any span.
                buf.flow_start("dep", flow_base + i as u64);
            }
            7 => {
                // A flow finish whose start may or may not exist.
                buf.flow_finish("dep", flow_base + (i as u64) / 2);
            }
            _ => {
                // Stray end with no open span.
                buf.end("stray");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adversarial_streams_export_well_formed(
        ops in prop::collection::vec(0u8..=255, 0..200),
        capacity in 64usize..2048,
    ) {
        let buf = TraceBuffer::new(capacity);
        replay(&buf, &ops, 10_000);
        let events = buf.events_sorted();
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
    }

    #[test]
    fn balanced_streams_survive_intact_without_eviction(
        depth in 1usize..20,
    ) {
        // A properly nested stream in a big-enough buffer must export
        // exactly as recorded: 2*depth events, no drops, no synthesis.
        let buf = TraceBuffer::new(1 << 16);
        for d in 0..depth {
            buf.begin(&format!("level{d}"));
        }
        for d in (0..depth).rev() {
            buf.end(&format!("level{d}"));
        }
        prop_assert_eq!(buf.dropped(), 0);
        let events = buf.events_sorted();
        prop_assert_eq!(events.len(), 2 * depth);
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
        // Nesting order preserved: first B is level0, last E is level0.
        prop_assert_eq!(events.first().unwrap().name.as_str(), "level0");
        prop_assert_eq!(events.last().unwrap().name.as_str(), "level0");
    }

    #[test]
    fn tiny_rings_with_heavy_eviction_stay_well_formed(
        nspans in 50usize..400,
    ) {
        // Capacity far below the recorded volume: most B events evict,
        // leaving orphan E events the exporter must drop.
        let buf = TraceBuffer::new(64);
        for i in 0..nspans {
            buf.begin(&format!("s{i}"));
            buf.end(&format!("s{i}"));
        }
        prop_assert!(buf.dropped() > 0);
        let events = buf.events_sorted();
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
    }

    #[test]
    fn multithreaded_streams_export_well_formed(
        nthreads in 2usize..6,
        ops in prop::collection::vec(0u8..=255, 10..120),
    ) {
        let buf = std::sync::Arc::new(TraceBuffer::new(4096));
        let mut handles = Vec::new();
        for t in 0..nthreads {
            let b = buf.clone();
            let my_ops: Vec<u8> = ops.iter().map(|&o| o.wrapping_add(t as u8)).collect();
            handles.push(std::thread::spawn(move || replay(&b, &my_ops, 10_000 * (t as u64 + 1))));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = buf.events_sorted();
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
    }

    #[test]
    fn concurrent_graph_flows_pair_and_stay_inside_spans(
        nthreads in 2usize..5,
        tasks_per_thread in 1usize..12,
        capacity in 256usize..4096,
    ) {
        // Simulates concurrent TaskGraph runs: wave one emits task spans
        // carrying flow *starts* (outgoing dependency arrows), wave two —
        // strictly after — emits successor spans carrying the matching
        // flow *finishes*. Every surviving arrow must reference spans that
        // exist and pair exactly once, even under eviction.
        let buf = std::sync::Arc::new(TraceBuffer::new(capacity));
        let mut handles = Vec::new();
        for t in 0..nthreads {
            let b = buf.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..tasks_per_thread {
                    let id = (t * 1000 + i) as u64;
                    b.begin(&format!("task.{t}.{i}"));
                    b.flow_start("dep", id);
                    b.end(&format!("task.{t}.{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..nthreads {
            let b = buf.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..tasks_per_thread {
                    let id = (t * 1000 + i) as u64;
                    b.begin(&format!("succ.{t}.{i}"));
                    b.flow_finish("dep", id);
                    b.end(&format!("succ.{t}.{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = buf.events_sorted();
        if let Err(e) = check_well_formed(&events) {
            prop_assert!(false, "ill-formed export: {}", e);
        }
        // Without eviction, every arrow survives end-to-end.
        if buf.dropped() == 0 {
            let nflows = events.iter().filter(|e| e.phase == Phase::FlowStart).count();
            prop_assert_eq!(nflows, nthreads * tasks_per_thread);
        }
    }

    #[test]
    fn exported_json_is_structurally_valid(
        ops in prop::collection::vec(0u8..=255, 0..150),
    ) {
        let buf = TraceBuffer::new(1024);
        replay(&buf, &ops, 10_000);
        let dir = std::env::temp_dir()
            .join(format!("exastro-ptrace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = buf.write_chrome_trace(dir.join("p.json")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(text.contains("\"traceEvents\""));
        prop_assert_eq!(text.matches('{').count(), text.matches('}').count());
        prop_assert_eq!(text.matches('[').count(), text.matches(']').count());
        // Every event line carries the four required keys.
        for line in text.lines().filter(|l| l.trim_start().starts_with("{\"name\"")) {
            for key in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
                prop_assert!(line.contains(key), "event line missing {}: {}", key, line);
            }
        }
    }
}
