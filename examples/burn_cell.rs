//! Single-zone burner demonstration (the Microphysics `burn_cell` unit
//! test): integrate the 13-isotope alpha chain at white-dwarf detonation
//! conditions with the VODE-style BDF integrator and watch the runaway.
//!
//! ```sh
//! cargo run --release --example burn_cell
//! ```

use exastro::microphysics::{Aprox13, Network, PlainBurner, SolverChoice, StellarEos};

fn main() {
    let net = Aprox13::new();
    let eos = StellarEos;

    // 50/50 carbon/oxygen fuel at near-detonation conditions.
    let rho = 5e7;
    let t0 = 2.8e9;
    let mut x = vec![0.0; net.nspec()];
    x[net.index_of("c12")] = 0.5;
    x[net.index_of("o16")] = 0.5;

    println!("aprox13 burn at rho = {rho:.1e} g/cc, T0 = {t0:.1e} K");
    println!(
        "Jacobian: {}×{}, {:.0}% structurally empty (the §VI sparse-solve target)\n",
        net.nspec() + 1,
        net.nspec() + 1,
        net.sparsity().empty_fraction() * 100.0
    );

    let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());
    let mut t = t0;
    let mut elapsed = 0.0f64;
    let mut dt = 1e-9;
    println!(
        "{:>12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "time [s]", "T [K]", "X(c12)", "X(o16)", "X(si28)", "X(ni56)", "steps"
    );
    for _ in 0..14 {
        let out = burner.burn(rho, t, &x, dt).expect("burn failed");
        elapsed += dt;
        t = out.t;
        x = out.x.clone();
        println!(
            "{:>12.3e} {:>10.3e} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8}",
            elapsed,
            t,
            x[net.index_of("c12")],
            x[net.index_of("o16")],
            x[net.index_of("si28")],
            x[net.index_of("ni56")],
            out.stats.steps
        );
        dt *= 2.5;
        if t > 6e9 {
            break;
        }
    }

    // Show the sparse-Jacobian option producing the same physics. The
    // BurnerConfig resolves the policy against the network's declared
    // sparsity pattern and compiles the symbolic factorization once.
    let cfg = exastro::microphysics::BurnerConfig {
        solver: SolverChoice::Sparse,
        ..Default::default()
    };
    let sparse_burner = PlainBurner::new(&net, &eos, cfg.bdf_for(&net));
    let mut x0 = vec![0.0; net.nspec()];
    x0[net.index_of("c12")] = 0.5;
    x0[net.index_of("o16")] = 0.5;
    let dense = burner.burn(rho, t0, &x0, 1e-7).unwrap();
    let sparse = sparse_burner.burn(rho, t0, &x0, 1e-7).unwrap();
    println!(
        "\ndense vs sparse-LU Newton solve after 1e-7 s: ΔT = {:.2e} K (identical physics)",
        (dense.t - sparse.t).abs()
    );
}
