//! Chaos drill: the self-healing service under seeded node kills and a
//! straggler wave.
//!
//! Boots the service on a five-node slice of the modeled machine with
//! the deterministic `NodeFaultModel` armed (MTBF-driven node crashes
//! with repair, plus transient stragglers), submits a mixed tenant
//! population, and lets the cluster fail underneath it. Every tenant's
//! final digest is checked in-process against a fault-free solo run of
//! the same spec: recoveries must be visible in the report and **zero**
//! digests may be corrupted.
//!
//! ```sh
//! cargo run --release --example chaos
//! # machine-readable report (CI schema-checks it):
//! cargo run --release --example chaos -- --report /tmp/chaos_report.json
//! # plus the cluster event log (exastro.event.v1 JSONL, one line per
//! # admit/lease/start/preempt/checkpoint/node-fail/revoke/recover/...):
//! cargo run --release --example chaos -- --events /tmp/chaos_events.jsonl
//! ```

use std::sync::Arc;

use exastro::machine::NodeFaultConfig;
use exastro::service::{
    JobOutcome, JobSpec, JsonlEventSink, NetChoice, PriorityClass, Scenario, Service, ServiceConfig,
};

/// `--report <path> --events <path>` (both optional, any order).
struct Cli {
    report: Option<String>,
    events: Option<String>,
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        report: None,
        events: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => cli.report = Some(args.next().expect("--report needs a path")),
            "--events" => cli.events = Some(args.next().expect("--events needs a path")),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: chaos [--report out.json] \
                     [--events events.jsonl]"
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

fn base_cfg(tag: &str, nodes: usize) -> ServiceConfig {
    ServiceConfig {
        nodes,
        ckpt_root: std::env::temp_dir()
            .join(format!("exastro_chaos_demo_{tag}_{}", std::process::id())),
        ..Default::default()
    }
}

/// Fault-free ground truth for one spec.
fn solo_digest(tag: &str, spec: JobSpec) -> u32 {
    let mut svc = Service::new(base_cfg(tag, spec.nodes));
    let id = svc.submit(spec).expect("solo submit");
    assert!(svc.run_until_idle(10_000), "solo run must drain");
    let report = svc.report();
    let rec = report.jobs.iter().find(|r| r.id == id).expect("record");
    assert_eq!(rec.outcome, JobOutcome::Completed, "solo run must complete");
    rec.final_digest
}

fn main() {
    let cli = parse_cli();

    let tenants = [
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 12,
            steps: 10,
            priority: PriorityClass::Batch,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::XrbFlame,
            network: NetChoice::TripleAlpha,
            resolution: 8,
            steps: 8,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::ReactingBubble,
            resolution: 12,
            steps: 6,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 8,
            steps: 12,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 12,
            steps: 6,
            priority: PriorityClass::High,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::ReactingBubble,
            resolution: 8,
            steps: 8,
            priority: PriorityClass::Batch,
            ..Default::default()
        },
    ];
    println!(
        "computing fault-free ground-truth digests for {} tenants...",
        tenants.len()
    );
    let want: Vec<u32> = tenants
        .iter()
        .enumerate()
        .map(|(i, s)| solo_digest(&format!("solo{i}"), s.clone()))
        .collect();

    // The same seeded storm the integration test proves out: node MTBF a
    // couple dozen job-steps, repairs shortly after, straggler episodes
    // at 4× step cost.
    let mut cfg = base_cfg("storm", 5);
    cfg.quarantine_limit = 10;
    cfg.idle_tick_sim_us = 2_000.0;
    cfg.faults = Some(NodeFaultConfig {
        seed: 0xC4A05,
        node_mtbf_s: 0.025,
        repair_s: Some(0.020),
        straggler_mtbf_s: 0.030,
        straggler_factor: 4.0,
        straggler_duration_s: 0.050,
        ..Default::default()
    });
    if let Some(path) = &cli.events {
        // Structured event log: every admit/lease/start/checkpoint/
        // node-fail/revoke/recover/migrate/terminal lands as one
        // sim-clock-stamped JSONL line (schema `exastro.event.v1`).
        let sink = JsonlEventSink::create(path).expect("create event log");
        cfg.events = Some(Arc::new(sink));
    }
    println!(
        "service up: 5 nodes (30 ranks), node MTBF {:.0} ms with repair, straggler wave armed",
        0.025 * 1e3
    );
    let mut svc = Service::new(cfg);
    let ids: Vec<_> = tenants
        .iter()
        .map(|s| svc.submit(s.clone()).expect("tenant admits"))
        .collect();
    assert!(svc.run_until_idle(100_000), "chaos run must drain");

    svc.flush_events().expect("event log IO must be clean");

    let report = svc.report();
    print!("{report}");
    if let Some(path) = &cli.report {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("wrote {path}");
    }
    if let Some(path) = &cli.events {
        println!("event log written to {path} (JSON Lines, exastro.event.v1)");
    }

    // The drill's acceptance: failures actually happened, the service
    // healed, and not one digest was corrupted.
    assert!(
        report.node_failures >= 3,
        "the storm must kill >=3 nodes, got {}",
        report.node_failures
    );
    assert!(
        report.recoveries >= 1,
        "the report must show checkpoint recoveries"
    );
    assert!(
        report.straggler_migrations >= 1,
        "the straggler wave must force a migration"
    );
    let mut corrupted = 0;
    for (id, want) in ids.iter().zip(&want) {
        let rec = report.jobs.iter().find(|r| r.id == *id).expect("record");
        match &rec.outcome {
            JobOutcome::Completed => {
                if rec.final_digest != *want {
                    eprintln!(
                        "{id}: digest {:#010x} != solo {want:#010x}",
                        rec.final_digest
                    );
                    corrupted += 1;
                }
            }
            JobOutcome::Quarantined(reason) => {
                println!("{id}: quarantined ({reason})");
            }
            JobOutcome::Failed(why) => panic!("{id} failed under chaos: {why}"),
        }
    }
    assert_eq!(corrupted, 0, "zero corrupted digests required");
    println!(
        "{} node failure(s), {} revocation(s), {} recovery(ies), {} migration(s), \
         0 corrupted digests",
        report.node_failures,
        report.lease_revocations,
        report.recoveries,
        report.straggler_migrations
    );
    println!("CHAOS OK");
}
