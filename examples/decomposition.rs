//! Figure 1 of the paper, as a runnable demonstration: one box, three ways
//! to parallelize it — whole box per MPI rank, coarse tiles per OpenMP
//! thread, one zone per GPU thread — plus the register/occupancy economics
//! that drive the choice.
//!
//! ```sh
//! cargo run --release --example decomposition
//! ```

use exastro::amr::{BoxArray, DistStrategy, DistributionMapping, IndexBox, IntVect};
use exastro::parallel::{tiles_of, DeviceConfig, SimDevice};

fn main() {
    let domain = IndexBox::cube(128);
    println!("domain: {domain:?} ({} zones)\n", domain.num_zones());

    // (Left panel) The MultiFab lives on a collection of boxes; each box
    // is assigned to an MPI rank.
    let ba = BoxArray::decompose(domain, 64, 32);
    let dm = DistributionMapping::new(&ba, 6, DistStrategy::Knapsack);
    println!(
        "-- MPI decomposition: {} boxes over 6 ranks (1 per GPU)",
        ba.len()
    );
    for r in 0..6 {
        let boxes = dm.boxes_on(r);
        let zones: i64 = boxes.iter().map(|&i| ba.get(i).num_zones()).sum();
        println!("   rank {r}: {:2} boxes, {:9} zones", boxes.len(), zones);
    }
    println!("   load imbalance (max/mean): {:.3}\n", dm.imbalance(&ba));

    // (Centre panel) Coarse-grained OpenMP: each thread takes a tile.
    let one_box = ba.get(0);
    let tiles = tiles_of(one_box, IntVect::new(1 << 20, 16, 16));
    println!(
        "-- OpenMP tiling of one {:?} box: {} tiles of ≤{} zones each",
        one_box.size(),
        tiles.len(),
        tiles.iter().map(|t| t.num_zones()).max().unwrap()
    );
    println!("   (a tile spans the whole box in x to keep stride-1 inner loops)\n");

    // (Right panel) On a GPU every zone is one thread: lo == hi per thread.
    println!(
        "-- GPU threading: {} zones → {} threads; occupancy vs launch size:",
        one_box.num_zones(),
        one_box.num_zones()
    );
    let dev = SimDevice::new(DeviceConfig::v100());
    for side in [8, 16, 32, 64, 100, 128] {
        let zones = (side as i64).pow(3);
        let occ = dev.occupancy(zones, 128);
        println!("   {side:>4}³ zones: occupancy {:5.1}%", occ * 100.0);
    }
    println!("\n-- register pressure (the §IV-B problem):");
    for regs in [128, 255, 320, 510] {
        let occ = dev.occupancy(100i64.pow(3), regs);
        println!(
            "   {regs:>4} registers/thread: occupancy {:5.1}%{}",
            occ * 100.0,
            if regs > 255 { "  (spilling)" } else { "" }
        );
    }
}
