//! Fault-injection smoke run for the in-step failure-recovery subsystem.
//!
//! Two phases:
//!
//! 1. **Recoverable** — a burning Sedov-style blast where ~1% of the
//!    burning zones are deterministically forced to fail their first burn
//!    attempt. Every one must be rescued by the retry ladder; the run
//!    completes with retries visible in the profiler report and prints
//!    `FAULT RECOVERY OK`.
//! 2. **Unrecoverable** — every burning zone fails more attempts than the
//!    ladder has rungs. The driver must reject the step, restore the
//!    pre-step state, write an emergency checkpoint, and return a
//!    structured error — never panic. Prints `EMERGENCY CHECKPOINT OK`.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use exastro::amr::{BcSpec, BoxArray, Geometry, MultiFab};
use exastro::castro::{BurnOptions, Castro, StateLayout};
use exastro::microphysics::{
    BdfErrorKind, BurnFaultConfig, CBurn2, Composition, Eos, Network, StellarEos,
};
use exastro::parallel::Profiler;

/// A dense, hot carbon ball: enough burning zones (several hundred) that a
/// 1% fault rate deterministically selects a handful of them.
fn hot_ball(geom: &Geometry, layout: &StateLayout, eos: &StellarEos, net: &CBurn2) -> MultiFab {
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
    let c = 1e8;
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let x = geom.cell_center(iv);
            let r = ((x[0] - c).powi(2) + (x[1] - c).powi(2) + (x[2] - c).powi(2)).sqrt();
            let rho = if r < 6e7 { 5e7 } else { 1e3 };
            let t = if r < 6e7 { 2.2e9 } else { 1e7 };
            let comp = Composition::from_mass_fractions(net.species(), &[1.0, 0.0]);
            let r_eos = eos.eval_rt(rho, t, &comp);
            let fab = state.fab_mut(i);
            fab.set(iv, StateLayout::RHO, rho);
            fab.set(iv, StateLayout::TEMP, t);
            fab.set(iv, StateLayout::EDEN, rho * r_eos.e);
            fab.set(iv, StateLayout::EINT, rho * r_eos.e);
            fab.set(iv, layout.spec(0), rho);
        }
    }
    state
}

fn main() {
    let eos = StellarEos;
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(16, 2e8, false);

    // ------------------------------------------------------------------
    // Phase 1: ~1% of burning zones fail their first attempt; the retry
    // ladder must rescue every one of them.
    // ------------------------------------------------------------------
    println!("phase 1: recoverable faults (1% of burn zones, 1 rung deep)\n");
    let mut state = hot_ball(&geom, &layout, &eos, &net);
    let mut castro = Castro::new(&eos, &net);
    castro.bc = BcSpec::outflow();
    castro.burn = Some(BurnOptions {
        min_temp: 5e8,
        min_dens: 1e5,
        faults: Some(BurnFaultConfig {
            seed: 2024,
            rate: 0.01,
            rungs_to_fail: 1,
            error: BdfErrorKind::MaxSteps,
        }),
        ..Default::default()
    });

    let mut recovered = 0;
    let mut retries = 0;
    for step in 0..3 {
        let dt = castro.estimate_dt(&state, &geom).min(1e-6);
        let (stats, dt_taken) = castro
            .advance_level_safe(&mut state, &geom, dt)
            .expect("recoverable faults must not kill the step");
        recovered += stats.burn.recovered;
        retries += stats.burn.retries;
        println!(
            "  step {step}: dt = {dt_taken:.3e}, {} zones burned, {} recovered, {} retries",
            stats.burn.zones, stats.burn.recovered, stats.burn.retries
        );
    }
    assert!(recovered > 0, "the 1% fault rate must hit some zones");
    assert!(retries >= recovered);
    // The recovered state is physical.
    castro
        .validate_state(&state, castro.recovery.species_tol)
        .expect("state must validate after recovery");

    println!("\n{}", Profiler::report());
    let burn_retries = Profiler::get("castro_advance/burn")
        .map(|s| s.retries)
        .unwrap_or(0);
    assert!(burn_retries > 0, "retries must appear in the profiler");
    println!("FAULT RECOVERY OK ({recovered} zones recovered, {retries} ladder retries)\n");

    // ------------------------------------------------------------------
    // Phase 2: unrecoverable faults — the driver must degrade gracefully:
    // restore the state, write an emergency checkpoint, return an error.
    // ------------------------------------------------------------------
    println!("phase 2: unrecoverable faults (every burn zone, ladder exhausted)\n");
    let dir = std::env::temp_dir().join(format!("exastro-fault-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut state = hot_ball(&geom, &layout, &eos, &net);
    castro.burn.as_mut().unwrap().faults = Some(BurnFaultConfig {
        seed: 7,
        rate: 1.0,
        rungs_to_fail: 99,
        error: BdfErrorKind::SingularMatrix,
    });
    castro.recovery = castro.recovery.clone().with_emergency_dir(&dir);
    castro.recovery.max_rejections = 2;

    let before = state.clone();
    let err = castro
        .advance_level_safe(&mut state, &geom, 1e-6)
        .expect_err("unrecoverable faults must surface as DriverError");
    println!("  driver error: {err}");
    assert!(
        err.emergency_checkpoint.is_some(),
        "no emergency checkpoint"
    );
    let chk = err.emergency_checkpoint.as_ref().unwrap();
    assert!(chk.is_dir(), "checkpoint not on disk: {}", chk.display());
    // The state was restored bit-exactly to its pre-step contents.
    for (i, vb) in state.iter_boxes() {
        for iv in vb.iter() {
            for c in 0..layout.ncomp() {
                assert_eq!(
                    state.fab(i).get(iv, c).to_bits(),
                    before.fab(i).get(iv, c).to_bits(),
                    "state not restored at {iv:?}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("EMERGENCY CHECKPOINT OK (state restored, structured error returned)");
}
