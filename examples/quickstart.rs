//! Quickstart: run a small Sedov–Taylor blast wave with Castro and compare
//! the measured shock radius against the analytic similarity solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use exastro::amr::{BcSpec, BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro::castro::{
    init_sedov, measure_shock_radius, sedov_shock_radius, BurnOptions, Castro, Floors, Gravity,
    GravityMode, Hydro, SedovParams, StateLayout,
};
use exastro::microphysics::{CBurn2, GammaLaw};
use exastro::parallel::{DeviceConfig, ExecSpace, Profiler, SimDevice};

fn main() {
    // A 48³ periodic unit box, decomposed into 24³ grids.
    let n = 48;
    let geom = Geometry::cube(n, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), 24, 8);
    let dm = DistributionMapping::all_local(&ba);

    // Gamma-law gas with a trivial 2-species composition.
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net_nspec(&net));
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);

    let params = SedovParams::default();
    init_sedov(&mut state, &geom, &layout, &eos, &params);

    let mut castro = Castro::new(&eos, &net);
    castro.hydro = Hydro {
        cfl: 0.4,
        floors: Floors::dimensionless(),
        ..Default::default()
    };
    castro.bc = BcSpec::outflow();
    // Run the kernels on a simulated V100 so the end-of-run profiler report
    // shows charged device time per region, and switch on the optional
    // physics (monopole gravity, reactions) so their regions appear too.
    // The burn thresholds are zeroed because this setup is dimensionless;
    // the cold gas burns at negligible rates but still exercises the
    // integrator.
    castro.ex = ExecSpace::Device(SimDevice::new(DeviceConfig::v100()));
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        ..Default::default()
    };
    castro.burn = Some(BurnOptions {
        min_temp: 0.0,
        min_dens: 0.0,
        ..Default::default()
    });

    let mass0 = castro.total_mass(&state, &geom);
    let energy0 = castro.total_energy(&state, &geom);
    println!("Sedov blast: {n}³ zones, E = {}", params.energy);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>8}",
        "step", "t", "R_measured", "R_analytic", "ratio"
    );

    let mut t = 0.0;
    for step in 0..60 {
        let dt = castro.estimate_dt(&state, &geom).min(0.005);
        castro.advance_level(&mut state, &geom, dt).unwrap();
        t += dt;
        if step % 10 == 9 {
            let r_meas = measure_shock_radius(&state, &geom, &params);
            let r_true = sedov_shock_radius(&params, t);
            println!(
                "{:>6} {:>10.4} {:>12.4} {:>12.4} {:>8.3}",
                step + 1,
                t,
                r_meas,
                r_true,
                r_meas / r_true
            );
        }
    }
    let mass1 = castro.total_mass(&state, &geom);
    let energy1 = castro.total_energy(&state, &geom);
    println!("mass   drift: {:+.3e} (relative)", mass1 / mass0 - 1.0);
    println!("energy drift: {:+.3e} (relative)", energy1 / energy0 - 1.0);

    // Per-region wall time, zone counts, and simulated device time collected
    // by the telemetry layer during the run.
    println!("\n{}", Profiler::report());
}

fn net_nspec(net: &CBurn2) -> usize {
    use exastro::microphysics::Network;
    net.nspec()
}
