//! Quickstart: run a small Sedov–Taylor blast wave with Castro and compare
//! the measured shock radius against the analytic similarity solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # with telemetry: a Chrome trace (load in Perfetto / chrome://tracing)
//! # and a per-step metrics stream (one JSON object per line):
//! cargo run --release --example quickstart -- --trace out.json --metrics steps.jsonl
//! ```

use exastro::amr::{BcSpec, BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro::castro::{
    init_sedov, measure_shock_radius, sedov_shock_radius, BurnOptions, Castro, Floors, Gravity,
    GravityMode, Hydro, SedovParams, StateLayout,
};
use exastro::microphysics::{CBurn2, GammaLaw};
use exastro::parallel::{DeviceConfig, ExecSpace, Profiler, SimDevice};
use exastro::telemetry::{JsonlSink, Telemetry};
use std::sync::Arc;

/// `--trace <path> --metrics <path>` (both optional, any order).
struct Cli {
    trace: Option<String>,
    metrics: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        trace: None,
        metrics: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => cli.trace = Some(args.next().expect("--trace needs a path")),
            "--metrics" => cli.metrics = Some(args.next().expect("--metrics needs a path")),
            other => {
                eprintln!("unknown argument {other}; usage: quickstart [--trace out.json] [--metrics steps.jsonl]");
                std::process::exit(2);
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    if cli.trace.is_some() || cli.metrics.is_some() {
        Telemetry::enable();
    }
    // A 48³ periodic unit box, decomposed into 24³ grids.
    let n = 48;
    let geom = Geometry::cube(n, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), 24, 8);
    let dm = DistributionMapping::all_local(&ba);

    // Gamma-law gas with a trivial 2-species composition.
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net_nspec(&net));
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);

    let params = SedovParams::default();
    init_sedov(&mut state, &geom, &layout, &eos, &params);

    let mut castro = Castro::new(&eos, &net);
    castro.hydro = Hydro {
        cfl: 0.4,
        floors: Floors::dimensionless(),
        ..Default::default()
    };
    castro.bc = BcSpec::outflow();
    // Run the kernels on a simulated V100 so the end-of-run profiler report
    // shows charged device time per region, and switch on the optional
    // physics (monopole gravity, reactions) so their regions appear too.
    // The burn thresholds are zeroed because this setup is dimensionless;
    // the cold gas burns at negligible rates but still exercises the
    // integrator.
    castro.ex = ExecSpace::Device(SimDevice::new(DeviceConfig::v100()));
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        ..Default::default()
    };
    castro.burn = Some(BurnOptions {
        min_temp: 0.0,
        min_dens: 0.0,
        ..Default::default()
    });
    if let Some(path) = &cli.metrics {
        let sink = JsonlSink::create(path).expect("create metrics file");
        castro.telemetry.attach_sink(Arc::new(sink));
    }

    let mass0 = castro.total_mass(&state, &geom);
    let energy0 = castro.total_energy(&state, &geom);
    println!("Sedov blast: {n}³ zones, E = {}", params.energy);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>8}",
        "step", "t", "R_measured", "R_analytic", "ratio"
    );

    // QUICKSTART_STEPS trims the run for CI smoke tests.
    let nsteps: usize = std::env::var("QUICKSTART_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let mut t = 0.0;
    for step in 0..nsteps {
        let dt = castro.estimate_dt(&state, &geom).min(0.005);
        // The transactional advance emits one StepMetrics record per
        // accepted step when a metrics sink is attached.
        castro.advance_level_safe(&mut state, &geom, dt).unwrap();
        t += dt;
        if step % 10 == 9 {
            let r_meas = measure_shock_radius(&state, &geom, &params);
            let r_true = sedov_shock_radius(&params, t);
            println!(
                "{:>6} {:>10.4} {:>12.4} {:>12.4} {:>8.3}",
                step + 1,
                t,
                r_meas,
                r_true,
                r_meas / r_true
            );
        }
    }
    let mass1 = castro.total_mass(&state, &geom);
    let energy1 = castro.total_energy(&state, &geom);
    println!("mass   drift: {:+.3e} (relative)", mass1 / mass0 - 1.0);
    println!("energy drift: {:+.3e} (relative)", energy1 / energy0 - 1.0);

    // Per-region wall time, zone counts, and simulated device time collected
    // by the telemetry layer during the run.
    println!("\n{}", Profiler::report());

    castro.telemetry.flush();
    if let Some(path) = &cli.trace {
        match Telemetry::write_trace(path) {
            Ok(p) => println!("trace written to {} (open in Perfetto)", p.display()),
            Err(e) => eprintln!("trace not written: {e}"),
        }
    }
    if let Some(path) = &cli.metrics {
        println!("step metrics written to {path} (JSON Lines)");
    }
}

fn net_nspec(net: &CBurn2) -> usize {
    use exastro::microphysics::Network;
    net.nspec()
}
