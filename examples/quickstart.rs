//! Quickstart: run a small Sedov–Taylor blast wave with Castro and compare
//! the measured shock radius against the analytic similarity solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # with telemetry: a Chrome trace (load in Perfetto / chrome://tracing)
//! # and a per-step metrics stream (one JSON object per line):
//! cargo run --release --example quickstart -- --trace out.json --metrics steps.jsonl
//! ```

use exastro::amr::{BcSpec, BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro::castro::{
    init_sedov, measure_shock_radius, sedov_shock_radius, BurnOptions, Castro, Floors, Gravity,
    GravityMode, Hydro, SedovParams, StateLayout,
};
use exastro::microphysics::{CBurn2, GammaLaw};
use exastro::parallel::{DeviceConfig, ExecSpace, Profiler, SimDevice};
use exastro::telemetry::{JsonlSink, Telemetry};
use std::sync::Arc;

/// `--trace <path> --metrics <path> --graph-trace <path>` (all optional,
/// any order).
struct Cli {
    trace: Option<String>,
    metrics: Option<String>,
    graph_trace: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        trace: None,
        metrics: None,
        graph_trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => cli.trace = Some(args.next().expect("--trace needs a path")),
            "--metrics" => cli.metrics = Some(args.next().expect("--metrics needs a path")),
            "--graph-trace" => {
                cli.graph_trace = Some(args.next().expect("--graph-trace needs a path"))
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: quickstart [--trace out.json] \
                     [--metrics steps.jsonl] [--graph-trace graphs.json]"
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    if cli.trace.is_some() || cli.metrics.is_some() {
        Telemetry::enable();
    }
    if cli.graph_trace.is_some() {
        // Per-task timestamps + flow arrows for every hydro sweep graph
        // (implies plain tracing: graph spans ride the same buffer).
        Telemetry::enable_graph_trace();
    }
    // A 48³ periodic unit box, decomposed into 24³ grids.
    let n = 48;
    let geom = Geometry::cube(n, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), 24, 8);
    let dm = DistributionMapping::all_local(&ba);

    // Gamma-law gas with a trivial 2-species composition.
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net_nspec(&net));
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);

    let params = SedovParams::default();
    init_sedov(&mut state, &geom, &layout, &eos, &params);

    let mut castro = Castro::new(&eos, &net);
    castro.hydro = Hydro {
        cfl: 0.4,
        floors: Floors::dimensionless(),
        ..Default::default()
    };
    castro.bc = BcSpec::outflow();
    // Run the kernels on a simulated V100 so the end-of-run profiler report
    // shows charged device time per region, and switch on the optional
    // physics (monopole gravity, reactions) so their regions appear too.
    // The burn thresholds are zeroed because this setup is dimensionless;
    // the cold gas burns at negligible rates but still exercises the
    // integrator.
    castro.ex = ExecSpace::Device(SimDevice::new(DeviceConfig::v100()));
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        ..Default::default()
    };
    castro.burn = Some(BurnOptions {
        min_temp: 0.0,
        min_dens: 0.0,
        ..Default::default()
    });
    if let Some(path) = &cli.metrics {
        let sink = JsonlSink::create(path).expect("create metrics file");
        castro.telemetry.attach_sink(Arc::new(sink));
    }

    let mass0 = castro.total_mass(&state, &geom);
    let energy0 = castro.total_energy(&state, &geom);
    println!("Sedov blast: {n}³ zones, E = {}", params.energy);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>8}",
        "step", "t", "R_measured", "R_analytic", "ratio"
    );

    // QUICKSTART_STEPS trims the run for CI smoke tests.
    let nsteps: usize = std::env::var("QUICKSTART_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let mut t = 0.0;
    for step in 0..nsteps {
        let dt = castro.estimate_dt(&state, &geom).min(0.005);
        // The transactional advance emits one StepMetrics record per
        // accepted step when a metrics sink is attached.
        castro.advance_level_safe(&mut state, &geom, dt).unwrap();
        t += dt;
        if step % 10 == 9 {
            let r_meas = measure_shock_radius(&state, &geom, &params);
            let r_true = sedov_shock_radius(&params, t);
            println!(
                "{:>6} {:>10.4} {:>12.4} {:>12.4} {:>8.3}",
                step + 1,
                t,
                r_meas,
                r_true,
                r_meas / r_true
            );
        }
    }
    let mass1 = castro.total_mass(&state, &geom);
    let energy1 = castro.total_energy(&state, &geom);
    println!("mass   drift: {:+.3e} (relative)", mass1 / mass0 - 1.0);
    println!("energy drift: {:+.3e} (relative)", energy1 / energy0 - 1.0);

    // Per-region wall time, zone counts, and simulated device time collected
    // by the telemetry layer during the run.
    println!("\n{}", Profiler::report());

    castro.telemetry.flush().expect("metrics stream IO");
    if let Some(path) = &cli.trace {
        match Telemetry::write_trace(path) {
            Ok(p) => println!("trace written to {} (open in Perfetto)", p.display()),
            Err(e) => eprintln!("trace not written: {e}"),
        }
    }
    if let Some(path) = &cli.metrics {
        println!("step metrics written to {path} (JSON Lines)");
    }
    if let Some(path) = &cli.graph_trace {
        write_graph_summary(path);
    }
}

/// Summarize every recorded sweep graph (critical path, slack, measured
/// overlap efficiency), reconcile the measurement against the machine
/// model's predicted hidden fraction, and write the
/// `exastro.graphtrace.v1` artifact.
fn write_graph_summary(path: &str) {
    use exastro::machine::hydro_overlap;
    use exastro::telemetry::graphtrace;

    // The same overlap model the fig2 overlapped series prices, for the
    // 24-wide boxes this example decomposes into.
    let model = hydro_overlap(24);
    let mut summaries: Vec<graphtrace::GraphSummary> = graphtrace::take()
        .iter()
        .map(graphtrace::summarize)
        .collect();
    for s in &mut summaries {
        let predicted = model.predicted_hidden_fraction(s.compute_us, s.comm_us);
        s.reconcile(predicted);
    }
    let measured = graphtrace::overall_efficiency(&summaries);
    let graphs = summaries.len();
    let max_workers = summaries.iter().map(|s| s.workers).max().unwrap_or(0);
    match graphtrace::write_summaries(path, &summaries) {
        Ok(p) => println!(
            "graph summary ({graphs} graph(s), {max_workers} worker(s)) written to {}",
            p.display()
        ),
        Err(e) => eprintln!("graph summary not written: {e}"),
    }
    // Comm-time-weighted aggregate of the model's per-graph prediction,
    // directly comparable to the measured overall efficiency.
    let total_comm: f64 = summaries.iter().map(|s| s.comm_us).sum();
    let predicted = (total_comm > 0.0).then(|| {
        summaries
            .iter()
            .map(|s| model.predicted_hidden_fraction(s.compute_us, s.comm_us) * s.comm_us)
            .sum::<f64>()
            / total_comm
    });
    if let (Some(m), Some(p)) = (measured, predicted) {
        println!(
            "overlap efficiency: measured {m:.3} vs modeled {p:.3} (drift {:+.3}; \
             a serial pool measures ~0)",
            m - p
        );
    }
}

fn net_nspec(net: &CBurn2) -> usize {
    use exastro::microphysics::Network;
    net.nspec()
}
