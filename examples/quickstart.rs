//! Quickstart: run a small Sedov–Taylor blast wave with Castro and compare
//! the measured shock radius against the analytic similarity solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use exastro::amr::{BcSpec, BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro::castro::{
    init_sedov, measure_shock_radius, sedov_shock_radius, Castro, Floors, Hydro, SedovParams,
    StateLayout,
};
use exastro::microphysics::{CBurn2, GammaLaw};

fn main() {
    // A 48³ periodic unit box, decomposed into 24³ grids.
    let n = 48;
    let geom = Geometry::cube(n, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), 24, 8);
    let dm = DistributionMapping::all_local(&ba);

    // Gamma-law gas with a trivial 2-species composition.
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net_nspec(&net));
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);

    let params = SedovParams::default();
    init_sedov(&mut state, &geom, &layout, &eos, &params);

    let mut castro = Castro::new(&eos, &net);
    castro.hydro = Hydro {
        cfl: 0.4,
        floors: Floors::dimensionless(),
        ..Default::default()
    };
    castro.bc = BcSpec::outflow();

    let mass0 = castro.total_mass(&state, &geom);
    let energy0 = castro.total_energy(&state, &geom);
    println!("Sedov blast: {n}³ zones, E = {}", params.energy);
    println!("{:>6} {:>10} {:>12} {:>12} {:>8}", "step", "t", "R_measured", "R_analytic", "ratio");

    let mut t = 0.0;
    for step in 0..60 {
        let dt = castro.estimate_dt(&state, &geom).min(0.005);
        castro.advance_level(&mut state, &geom, dt);
        t += dt;
        if step % 10 == 9 {
            let r_meas = measure_shock_radius(&state, &geom, &params);
            let r_true = sedov_shock_radius(&params, t);
            println!(
                "{:>6} {:>10.4} {:>12.4} {:>12.4} {:>8.3}",
                step + 1,
                t,
                r_meas,
                r_true,
                r_meas / r_true
            );
        }
    }
    let mass1 = castro.total_mass(&state, &geom);
    let energy1 = castro.total_energy(&state, &geom);
    println!("mass   drift: {:+.3e} (relative)", mass1 / mass0 - 1.0);
    println!("energy drift: {:+.3e} (relative)", energy1 / energy0 - 1.0);
}

fn net_nspec(net: &CBurn2) -> usize {
    use exastro::microphysics::Network;
    net.nspec()
}
