//! The MAESTROeX reacting-bubble problem (§IV-B): a hot spot in a
//! white-dwarf-like plane-parallel atmosphere ignites carbon and rises.
//!
//! ```sh
//! cargo run --release --example reacting_bubble
//! ```

use exastro::amr::{BoxArray, DistStrategy, DistributionMapping, Geometry, IndexBox, MultiFab};
use exastro::maestro::{bubble_diagnostics, bubble_maestro, init_bubble, BubbleParams, LmLayout};
use exastro::microphysics::{CBurn2, Network, StellarEos};

fn main() {
    let n = 24;
    let geom = Geometry::new(
        IndexBox::cube(n),
        [0.0; 3],
        [3.6e7; 3],
        [true, true, false],
        exastro::amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), 12, 4);
    let dm = DistributionMapping::new(&ba, 1, DistStrategy::Sfc);

    let eos = StellarEos;
    let net = CBurn2::new();
    let layout = LmLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 1);
    let params = BubbleParams::default();
    let base = init_bubble(&mut state, &geom, &layout, &eos, &net, &params);
    println!(
        "reacting bubble: {n}³ zones, atmosphere rho = {:.1e}..{:.1e} g/cc (hydrostatic residual {:.1e})",
        base.rho0.last().unwrap(),
        base.rho0[0],
        base.hydrostatic_residual()
    );
    let maestro = bubble_maestro(&eos, &net, base);

    println!(
        "\n{:>6} {:>10} {:>11} {:>10} {:>11} {:>9} {:>8}",
        "step", "t [s]", "T_max [K]", "X(ash)max", "height [cm]", "w_max", "MG cyc"
    );
    let mut t = 0.0;
    for step in 0..12 {
        let dt = maestro.estimate_dt(&state, &geom).min(4e-3);
        let stats = maestro
            .advance(&mut state, &geom, dt)
            .expect("bubble step failed");
        t += dt;
        let d = bubble_diagnostics(&state, &geom, &layout, params.t_ambient);
        println!(
            "{:>6} {:>10.4} {:>11.3e} {:>10.3e} {:>11.3e} {:>9.2e} {:>8}",
            step,
            t,
            d.max_temp,
            d.max_ash,
            d.bubble_height,
            d.max_w,
            stats.projection.as_ref().map(|p| p.cycles).unwrap_or(0)
        );
    }
    println!("\nThe low-Mach timestep here is set by the fluid velocity;");
    println!(
        "a compressible code would be limited to dt ≈ {:.1e} s by the sound speed.",
        geom.min_dx() / 5e8
    );
}
