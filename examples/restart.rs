//! Checkpoint/restart survival demo: a Sedov blast is killed repeatedly by
//! an injected fault schedule (plus one silently corrupted checkpoint) and
//! still reaches its final time with the *bit-identical* answer of an
//! uninterrupted run, by resuming from the newest intact checkpoint.
//!
//! Also prices the checkpoint cadence on the Summit machine model and
//! reports the Young/Daly optimal interval.
//!
//! ```sh
//! cargo run --release --example restart
//! ```

use exastro::amr::{BoxArray, Geometry, MultiFab};
use exastro::castro::{init_sedov, Castro, SedovParams, StateLayout};
use exastro::machine::Machine;
use exastro::microphysics::{CBurn2, GammaLaw, Network};
use exastro::parallel::{DeviceConfig, Profiler, SimDevice};
use exastro::resilience::snapshot::digest_multifab;
use exastro::resilience::{faults, interval, CheckpointManager, Clock, KillSchedule, Snapshot};

const TOTAL_STEPS: u64 = 18;
const CKPT_EVERY: u64 = 3;

fn fresh_state(geom: &Geometry, layout: &StateLayout, eos: &GammaLaw) -> MultiFab {
    let ba = BoxArray::decompose(geom.domain(), 12, 4);
    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
    init_sedov(&mut state, geom, layout, eos, &SedovParams::default());
    state
}

fn main() {
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(24, 1.0, false);
    let castro = Castro::new(&eos, &net);
    let names = exastro::castro::variable_names(&layout);

    // ---- Gold: the uninterrupted run.
    let mut gold = fresh_state(&geom, &layout, &eos);
    for _ in 0..TOTAL_STEPS {
        let dt = castro.estimate_dt(&gold, &geom).min(2e-3);
        castro.advance_level(&mut gold, &geom, dt).unwrap();
    }
    let gold_digest = digest_multifab(&gold);
    println!("gold run: {TOTAL_STEPS} steps uninterrupted, digest {gold_digest:08x}");

    // ---- Survival run: kills at steps 5, 11, and 16, one checkpoint
    // silently bit-rotted between relaunches.
    let root = std::env::temp_dir().join(format!("exastro_restart_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let device = SimDevice::new(DeviceConfig::v100());
    let mgr = CheckpointManager::new(&root)
        .expect("create checkpoint root")
        .keep_last(2)
        .with_device(device.clone());
    let mut kills = KillSchedule::at_steps(&[5, 11, 16]);
    let mut corrupted_once = false;
    let mut launches = 0u32;

    let final_state = loop {
        launches += 1;
        // Relaunch: resume from the newest intact checkpoint, or start over.
        let (mut state, mut step, mut time) = match mgr.resume() {
            Ok(snap) => {
                println!(
                    "launch {launches}: resumed from step {} (t = {:.5})",
                    snap.clock.step, snap.clock.time
                );
                let st = snap.levels[0].state.clone();
                (st, snap.clock.step, snap.clock.time)
            }
            Err(_) => {
                println!("launch {launches}: no checkpoint, starting from scratch");
                (fresh_state(&geom, &layout, &eos), 0, 0.0)
            }
        };
        let mut died = false;
        while step < TOTAL_STEPS {
            let dt = castro.estimate_dt(&state, &geom).min(2e-3);
            castro.advance_level(&mut state, &geom, dt).unwrap();
            step += 1;
            time += dt;
            if kills.should_die(step) {
                println!(
                    "launch {launches}: killed at step {step} (work since last checkpoint lost)"
                );
                died = true;
                break;
            }
            if step % CKPT_EVERY == 0 {
                let snap = Snapshot::single_level(
                    geom.clone(),
                    state.clone(),
                    Clock { step, time, dt },
                    names.clone(),
                );
                mgr.write(&snap).expect("checkpoint write");
            }
        }
        if died {
            // Between the first two relaunches, bit-rot the newest
            // checkpoint: the manager must detect it and fall back.
            if !corrupted_once {
                if let Some((s, path)) = mgr.latest_good() {
                    faults::flip_bit(&path.join("Level_00/fab_00000.bin"), 4096, 1)
                        .expect("inject corruption");
                    println!("injected bit flip into checkpoint chk{s:08}");
                    corrupted_once = true;
                }
            }
            continue;
        }
        break state;
    };

    let digest = digest_multifab(&final_state);
    let stats = mgr.stats();
    println!(
        "\nsurvived {} kills over {launches} launches; {} checkpoints written ({:.2} MB), \
         {} corrupt checkpoint(s) detected and skipped",
        kills.kills_delivered(),
        stats.writes,
        stats.bytes_written as f64 / 1e6,
        stats.corrupt_detected
    );
    println!("final digest {digest:08x} (gold {gold_digest:08x})");

    // ---- Price the cadence on the Summit model and report Young/Daly.
    let machine = Machine::summit();
    let snap_bytes = {
        let snap =
            Snapshot::single_level(geom.clone(), final_state.clone(), Clock::default(), names);
        snap.payload_bytes()
    };
    let nodes = 1;
    let ckpt_cost_us = snap_bytes as f64 / machine.node.gpu.d2h_bw_bytes_per_us
        + machine.checkpoint_write_us(snap_bytes, nodes);
    // Pretend-MTBF chosen so the demo prints a meaningful cadence.
    let mtbf_us = 3.0e9; // 50 machine-minutes
    let tau_young = interval::interval(mtbf_us, ckpt_cost_us);
    let tau_daly = interval::daly_interval(mtbf_us, ckpt_cost_us);
    println!(
        "\ncheckpoint cost on {nodes} Summit node(s): {:.0} us for {:.2} MB \
         -> Young interval {:.1} s, Daly {:.1} s at MTBF {:.0} s",
        ckpt_cost_us,
        snap_bytes as f64 / 1e6,
        tau_young / 1e6,
        tau_daly / 1e6,
        mtbf_us / 1e6
    );

    // Cadence sweep: expected waste (checkpoint overhead + lost work on
    // failure) as the interval moves off the Young optimum.
    println!("\ncadence sweep (waste = C/tau + tau/2M):");
    println!("{:>12} {:>10}", "tau/tau_opt", "waste");
    for mult in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let w = interval::expected_waste(tau_young * mult, mtbf_us, ckpt_cost_us);
        println!("{mult:>12} {:>9.2}%", w * 100.0);
    }

    println!("\n{}", Profiler::report_with_device(&device));

    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(
        digest, gold_digest,
        "the survived run must reproduce the uninterrupted answer"
    );
    println!("RESTART OK");
}
