//! Simulation-as-a-service demo: a multi-tenant job runtime over the
//! cluster simulator.
//!
//! Boots the service on a two-node slice of the modeled machine, submits
//! a mixed tenant population — all four scenarios, three priority
//! classes, one job with deterministically fatal burn faults — then lands
//! a high-priority arrival on the full pool so the scheduler has to
//! checkpoint-preempt a tenant, migrate it, and resume it bit-exactly.
//!
//! ```sh
//! cargo run --release --example service
//! # machine-readable artifacts (CI schema-checks both):
//! cargo run --release --example service -- \
//!     --report /tmp/service_report.json --jsonl-dir /tmp/service_jobs
//! ```

use exastro::microphysics::{BdfErrorKind, BurnFaultConfig};
use exastro::service::{
    JobOutcome, JobSpec, NetChoice, PriorityClass, Scenario, Service, ServiceConfig,
};

/// `--report <path> --jsonl-dir <dir>` (both optional, any order).
struct Cli {
    report: Option<String>,
    jsonl_dir: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        report: None,
        jsonl_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => cli.report = Some(args.next().expect("--report needs a path")),
            "--jsonl-dir" => cli.jsonl_dir = Some(args.next().expect("--jsonl-dir needs a dir")),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: service [--report out.json] [--jsonl-dir dir]"
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let jsonl_dir = cli
        .jsonl_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("exastro_service_demo_jobs"));

    let cfg = ServiceConfig {
        nodes: 2, // a 12-rank pool: two one-node tenants fit side by side
        queue_bound: 32,
        jsonl_dir: Some(jsonl_dir.clone()),
        ckpt_root: std::env::temp_dir()
            .join(format!("exastro_service_demo_{}", std::process::id())),
        ..Default::default()
    };
    println!(
        "service up: {} nodes ({} ranks), queue bound {}",
        cfg.nodes,
        cfg.nodes * 6,
        cfg.queue_bound
    );
    let mut svc = Service::new(cfg);

    // The steady tenant mix: every scenario in the suite, mixed classes.
    let tenants = [
        JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 12,
            steps: 8,
            priority: PriorityClass::Batch,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::XrbFlame,
            network: NetChoice::TripleAlpha,
            resolution: 8,
            steps: 6,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::ReactingBubble,
            resolution: 12,
            steps: 6,
            ..Default::default()
        },
        JobSpec {
            scenario: Scenario::WdCollision,
            network: NetChoice::Aprox13,
            resolution: 12,
            steps: 2,
            priority: PriorityClass::Batch,
            ..Default::default()
        },
        // A tenant whose burn is rigged to die beyond the retry ladder:
        // the service must fail *only this job*.
        JobSpec {
            scenario: Scenario::SedovBlast,
            steps: 4,
            burn_faults: Some(BurnFaultConfig {
                seed: 42,
                rate: 1.0,
                rungs_to_fail: 99,
                error: BdfErrorKind::MaxSteps,
            }),
            ..Default::default()
        },
    ];
    for spec in tenants {
        let id = svc.submit(spec.clone()).expect("tenant admits");
        println!(
            "submitted {id}: {} / {} / {} class, {} step(s)",
            spec.scenario, spec.network, spec.priority, spec.steps
        );
    }

    // Let the pool fill, then land the deadline job on a full machine.
    for _ in 0..2 {
        svc.tick();
    }
    let high = svc
        .submit(JobSpec {
            scenario: Scenario::SedovBlast,
            resolution: 12,
            nodes: 2, // wants the whole pool → somebody gets checkpointed off
            steps: 4,
            priority: PriorityClass::High,
            deadline_s: Some(120.0),
            ..Default::default()
        })
        .expect("high-priority job admits");
    println!("submitted {high}: high-priority, 2 nodes — the pool is full, preemption incoming");

    assert!(svc.run_until_idle(100_000), "service must drain");
    let report = svc.report();
    print!("{report}");

    if let Some(path) = &cli.report {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("wrote {path}");
    }
    println!("per-job telemetry in {}", jsonl_dir.display());

    // The demo's own acceptance: one rigged failure contained, everything
    // else completed, and the deadline wave actually preempted somebody.
    assert_eq!(report.failed, 1, "exactly the rigged job fails");
    assert_eq!(report.completed, 5, "every healthy tenant completes");
    assert!(report.preemptions >= 1, "the high job must preempt");
    let h = report
        .jobs
        .iter()
        .find(|j| j.priority == PriorityClass::High);
    assert_eq!(h.expect("high record").outcome, JobOutcome::Completed);
    println!("SERVICE OK");
}
