//! The §V science problem at laptop scale: two white dwarfs collide
//! head-on; we watch the contact point heat up and report when (and
//! whether) thermonuclear ignition (T ≥ 4×10⁹ K) occurs, along with the
//! detonation-stability diagnostic the paper uses to argue the runs are
//! under-resolved.
//!
//! ```sh
//! cargo run --release --example wd_collision
//! ```

use exastro::amr::{BcSpec, BoxArray, DistributionMapping, Geometry, MultiFab};
use exastro::castro::{
    contact_diagnostics, contact_time_estimate, detonation_stability, init_collision, BurnOptions,
    Castro, CollisionParams, Gravity, GravityMode, StateLayout, T_IGNITION,
};
use exastro::microphysics::{CBurn2, Network, StellarEos};

fn main() {
    let n = 16;
    // A faster approach speed than the fiducial keeps this example quick
    // on one CPU core while preserving the contact-heating physics.
    let params = CollisionParams {
        v_approach: 6e8,
        separation: 3.0,
        ..Default::default()
    };
    let half_width = 2.5 * params.radius;
    let geom = Geometry::new(
        exastro::amr::IndexBox::cube(n),
        [-half_width; 3],
        [half_width; 3],
        [false; 3],
        exastro::amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let dm = DistributionMapping::all_local(&ba);

    let eos = StellarEos;
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    init_collision(&mut state, &geom, &layout, &eos, &net, &params);

    let mut castro = Castro::new(&eos, &net);
    castro.hydro.cfl = 0.2; // strong shocks strengthen mid-step at contact
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        n_bins: 256,
    };
    castro.burn = Some(BurnOptions {
        min_temp: 5e8,
        min_dens: 1e4,
        ..Default::default()
    });
    castro.bc = BcSpec::outflow();

    println!(
        "WD collision: {n}³ zones, dx = {:.0} km, stars R = {:.0} km, v = ±{:.0} km/s",
        geom.dx()[0] / 1e5,
        params.radius / 1e5,
        params.v_approach / 1e5
    );
    println!(
        "surfaces touch at t ≈ {:.2} s\n",
        contact_time_estimate(&params)
    );
    println!(
        "{:>6} {:>9} {:>11} {:>11} {:>10}",
        "step", "t [s]", "T_max [K]", "rho_max", "burn zones"
    );

    let mut t = 0.0;
    for step in 0..400 {
        let dt0 = castro.estimate_dt(&state, &geom);
        let (stats, dt) = match castro.advance_level_safe(&mut state, &geom, dt0) {
            Ok(ok) => ok,
            Err(e) => {
                println!("\n*** step {step} unrecoverable: {e} ***");
                return;
            }
        };
        t += dt;
        if step % 10 == 0 {
            println!(
                "{:>6} {:>9.3} {:>11.3e} {:>11.3e} {:>10}",
                step, t, stats.max_temp, stats.max_dens, stats.burn.zones
            );
        }
        if stats.max_temp >= T_IGNITION {
            let d = contact_diagnostics(&state, &geom);
            println!("\n*** IGNITION at t = {t:.3} s ***");
            println!(
                "hottest zone at ({:.2e}, {:.2e}, {:.2e}) cm",
                d.hottest[0], d.hottest[1], d.hottest[2]
            );
            let report = detonation_stability(&state, &geom, &layout, &eos, &net, 1e14);
            println!(
                "detonation stability: min τ_burn/τ_transfer = {:.3e} over {} burning zones ({} unstable)",
                report.min_ratio, report.burning_zones, report.unstable_zones
            );
            if report.min_ratio < 1.0 {
                println!(
                    "→ unresolved, as the paper finds at 50 km zones: the burning timescale is \
                     shorter than the heat-transfer timescale"
                );
            }
            return;
        }
    }
    println!("\nno ignition within the simulated window");
}
