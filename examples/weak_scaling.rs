//! Regenerate the paper's weak-scaling figures (Figures 2 and 3) on the
//! simulated Summit and print the series the paper plots.
//!
//! ```sh
//! cargo run --release --example weak_scaling
//! ```

use exastro::machine::{bubble_series, canonical_series, envelope_series, Machine};

fn main() {
    let m = Machine::summit();

    println!("=== Figure 2: Castro Sedov weak scaling ===");
    println!("(normalized throughput; paper: 130 zones/µs at 1 node, ~63% at 512)\n");
    let canon = canonical_series(&m, &[1, 8, 64, 512]);
    println!(
        "{:>6} {:>10} {:>12} {:>11}",
        "nodes", "domain", "zones/µs", "normalized"
    );
    for p in &canon {
        println!(
            "{:>6} {:>9}³ {:>12.1} {:>11.3}",
            p.nodes, p.domain_side, p.throughput, p.normalized
        );
    }

    println!("\nbest/worst envelopes over max-box ∈ {{32,48,64,96,128}} × two domain sizes:");
    let nodes: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let (best, worst) = envelope_series(&m, &nodes);
    println!(
        "{:>6} {:>11} {:>16} {:>11} {:>16}",
        "nodes", "best", "(domain, box)", "worst", "(domain, box)"
    );
    for (b, w) in best.iter().zip(&worst) {
        println!(
            "{:>6} {:>11.3} {:>10}³ /{:>4} {:>11.3} {:>10}³ /{:>4}",
            b.nodes, b.normalized, b.domain_side, b.max_box, w.normalized, w.domain_side, w.max_box
        );
    }

    println!("\n=== Figure 3: MAESTROeX reacting-bubble weak scaling ===");
    println!("(paper: 11 zones/µs at 1 node; multigrid ≈ reactions at 1 node, ~6× at 125)\n");
    let pts = bubble_series(&m, &[1, 8, 27, 64, 125]);
    println!(
        "{:>6} {:>10} {:>11} {:>12} {:>12} {:>9}",
        "nodes", "zones/µs", "normalized", "react [µs]", "mgrid [µs]", "mg/react"
    );
    for p in &pts {
        println!(
            "{:>6} {:>10.2} {:>11.3} {:>12.0} {:>12.0} {:>9.2}",
            p.nodes,
            p.throughput,
            p.normalized,
            p.react_us,
            p.multigrid_us,
            p.multigrid_us / p.react_us
        );
    }
}
