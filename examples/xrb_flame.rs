//! X-ray-burst-like helium burning in a thin accreted layer — the other
//! science driver the paper's introduction motivates (refs [7][8]): a hot
//! helium layer on a neutron-star-like surface ignites via the T⁴⁰-
//! sensitive triple-alpha reaction.
//!
//! This example burns a vertical column of the layer zone-by-zone and
//! prints the ignition front developing, plus the §V stability criterion
//! (zone width vs. the critical width) at the flame.
//!
//! ```sh
//! cargo run --release --example xrb_flame
//! ```

use exastro::castro::critical_zone_width;
use exastro::microphysics::{PlainBurner, StellarEos, TripleAlpha};

fn main() {
    let net = TripleAlpha::new();
    let eos = StellarEos;
    let burner = PlainBurner::new(&net, &eos, PlainBurner::default_options());

    // A column through the accreted helium layer: density falls with
    // height; the base is hottest.
    let nz = 16;
    let rho_base = 2e6;
    let t_base = 2.8e8;
    let mut column: Vec<(f64, f64, Vec<f64>)> = (0..nz)
        .map(|k| {
            let f = k as f64 / nz as f64;
            let rho = rho_base * (-3.0 * f).exp();
            let t = t_base * (1.0 - 0.5 * f);
            (rho, t, vec![1.0, 0.0, 0.0]) // pure helium
        })
        .collect();

    println!(
        "XRB helium layer: {nz} zones, base rho = {rho_base:.1e} g/cc, base T = {t_base:.1e} K"
    );
    println!(
        "triple-alpha log-sensitivity at the base: d ln ε / d ln T ≈ {:.0}\n",
        exastro::microphysics::Rate::TripleAlpha.log_slope(t_base / 1e9)
    );

    let dt = 5.0; // seconds per report interval
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "t [s]", "T_base [K]", "X(he4)", "X(c12)"
    );
    let mut t_elapsed = 0.0;
    for _ in 0..12 {
        for (rho, t, x) in column.iter_mut() {
            let out = burner.burn(*rho, *t, x, dt).expect("burn failed");
            *t = out.t;
            *x = out.x;
        }
        t_elapsed += dt;
        let (rho0, t0, x0) = &column[0];
        println!(
            "{:>8.1} {:>12.4e} {:>10.4} {:>10.4}",
            t_elapsed, t0, x0[0], x0[1]
        );
        if *t0 > 1.5e9 {
            println!("\n*** runaway at the layer base (t = {t_elapsed:.1} s) ***");
            // Evaluate the resolvability criterion at the runaway onset
            // (T = 10⁹ K, fresh fuel), not the burned-out end state.
            let crit = critical_zone_width(*rho0, 1e9, &[1.0, 0.0, 0.0], &eos, &net);
            println!(
                "critical zone width for resolved burning at onset: {:.2e} cm",
                crit
            );
            println!("(the paper's X-ray-burst simulations need sub-km zones for this reason)");
            break;
        }
    }
    // Show the vertical structure of the runaway.
    println!("\nfinal column (bottom → top):");
    println!("{:>4} {:>10} {:>12} {:>8}", "k", "rho", "T [K]", "X(he4)");
    for (k, (rho, t, x)) in column.iter().enumerate().step_by(3) {
        println!("{k:>4} {rho:>10.2e} {t:>12.3e} {:>8.4}", x[0]);
    }
}
