//! # exastro
//!
//! A from-scratch Rust reproduction of the software stack described in
//! *Preparing Nuclear Astrophysics for Exascale* (Katz et al., SC 2020):
//! the AMReX-style block-structured AMR framework, the shared
//! microphysics (equations of state, reaction networks, a VODE-style
//! stiff integrator), the Castro compressible solver, the MAESTROeX
//! low-Mach solver, the GPU execution-model abstraction with its
//! simulated accelerator, and a Summit-like cluster performance simulator
//! that regenerates the paper's scaling figures.
//!
//! Start with the [`quickstart`](https://example.org) example, or the
//! per-crate docs:
//!
//! * [`parallel`] — `parallel_for` abstraction, simulated device, arenas;
//! * [`amr`] — boxes, multifabs, distribution maps, AMR hierarchies;
//! * [`microphysics`] — EOS, networks, burner, BDF integrator;
//! * [`solvers`] — multigrid and Krylov solvers;
//! * [`castro`] — compressible reactive hydro + gravity;
//! * [`maestro`] — low-Mach convection;
//! * [`machine`] — the cluster performance simulator;
//! * [`resilience`] — checkpoint/restart with integrity checking and
//!   fault injection;
//! * [`telemetry`] — Chrome-trace spans, per-step metrics, zone-cost
//!   histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use exastro_amr as amr;
pub use exastro_castro as castro;
pub use exastro_machine as machine;
pub use exastro_maestro as maestro;
pub use exastro_microphysics as microphysics;
pub use exastro_parallel as parallel;
pub use exastro_resilience as resilience;
pub use exastro_service as service;
pub use exastro_solvers as solvers;
pub use exastro_telemetry as telemetry;
