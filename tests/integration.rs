//! Cross-crate integration tests: full physics steps exercising the AMR
//! framework, microphysics, solvers, and drivers together.

use exastro::amr::{
    BcSpec, BoxArray, ClusterParams, DistStrategy, DistributionMapping, Geometry, Hierarchy,
    IndexBox, IntVect, MultiFab,
};
use exastro::castro::{
    init_sedov, measure_shock_radius, sedov_shock_radius, BurnOptions, Castro, Floors, Gravity,
    GravityMode, Hydro, KernelStructure, SedovParams, StateLayout,
};
use exastro::microphysics::{CBurn2, GammaLaw, Network, StellarEos};

fn sedov_castro(eos: &GammaLaw, net: &CBurn2) -> Castro<'static> {
    // Leak to get 'static borrows for the test driver (fine in tests).
    let eos: &'static GammaLaw = Box::leak(Box::new(*eos));
    let net: &'static CBurn2 = Box::leak(Box::new(net.clone()));
    let mut c = Castro::new(eos, net);
    c.hydro = Hydro {
        cfl: 0.4,
        structure: KernelStructure::Flat,
        overlap: true,
        floors: Floors::dimensionless(),
    };
    c.bc = BcSpec::outflow();
    c
}

#[test]
fn sedov_blast_tracks_similarity_solution() {
    let n = 40;
    let geom = Geometry::cube(n, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), 20, 4);
    let dm = DistributionMapping::new(&ba, 3, DistStrategy::Sfc);
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let mut state = MultiFab::new(ba, dm, layout.ncomp(), 2);
    let params = SedovParams::default();
    init_sedov(&mut state, &geom, &layout, &eos, &params);
    let castro = sedov_castro(&eos, &net);

    let mass0 = castro.total_mass(&state, &geom);
    let energy0 = castro.total_energy(&state, &geom);
    let mut t = 0.0;
    for _ in 0..40 {
        let dt = castro.estimate_dt(&state, &geom).min(5e-3);
        castro.advance_level(&mut state, &geom, dt).unwrap();
        t += dt;
    }
    // Conservation to round-off while the blast is interior.
    assert!((castro.total_mass(&state, &geom) / mass0 - 1.0).abs() < 1e-12);
    assert!((castro.total_energy(&state, &geom) / energy0 - 1.0).abs() < 1e-12);
    // Shock radius within 10% of the analytic value at this resolution.
    let r_meas = measure_shock_radius(&state, &geom, &params);
    let r_true = sedov_shock_radius(&params, t);
    assert!(
        (r_meas / r_true - 1.0).abs() < 0.10,
        "R = {r_meas} vs analytic {r_true} at t = {t}"
    );
    // Blast is spherical: compare x/y/z extents of the dense shell.
    let d = state.max(StateLayout::RHO);
    assert!(d > 1.5, "a dense shell formed: max rho {d}");
}

#[test]
fn two_level_amr_advance_conserves_mass() {
    // Sedov on a coarse level with a refined centre; the hierarchy advance
    // (fill_patch, per-level hydro, reflux, average_down) must conserve
    // mass to round-off.
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(32, 1.0, false);
    let mut hier = Hierarchy::single_level(geom.clone(), 16, 4, 1, DistStrategy::RoundRobin);
    // Tag the centre for refinement.
    let tags: Vec<IntVect> = IndexBox::new(IntVect::splat(10), IntVect::splat(21))
        .iter()
        .collect();
    hier.regrid(
        0,
        &tags,
        2,
        &ClusterParams {
            max_size: 32,
            min_efficiency: 0.6,
            blocking_factor: 4,
        },
    );
    assert_eq!(hier.nlevels(), 2);

    let mut states: Vec<MultiFab> = (0..2)
        .map(|l| hier.make_multifab(l, layout.ncomp(), 2))
        .collect();
    let params = SedovParams::default();
    for (l, state) in states.iter_mut().enumerate().take(2) {
        let g = hier.level(l).geom.clone();
        init_sedov(state, &g, &layout, &eos, &params);
    }
    let castro = sedov_castro(&eos, &net);
    let vol0 = hier.level(0).geom.cell_volume();

    // Mass accounting on the composite grid: coarse zones covered by fine
    // data are replaced by the fine average, so total mass = coarse sum.
    let mass_before = states[0].sum(StateLayout::RHO) * vol0;
    for _ in 0..5 {
        let dt = castro
            .estimate_dt(&states[1], &hier.level(1).geom)
            .min(2e-3);
        castro.advance_hierarchy(&hier, &mut states, dt).unwrap();
    }
    let mass_after = states[0].sum(StateLayout::RHO) * vol0;
    assert!(
        (mass_after / mass_before - 1.0).abs() < 1e-10,
        "AMR mass drift: {mass_before} -> {mass_after}"
    );
    // The fine level has real structure (the blast was centred there).
    assert!(states[1].max(StateLayout::RHO) > 1.1);
}

#[test]
fn refined_level_sees_hotter_contact_than_coarse() {
    // The Figure-4 mechanism in miniature: the same smooth hot spot
    // profile sampled at 2× resolution attains a higher peak temperature
    // (less volume averaging of the peak) — the reason the high-resolution
    // collision ignites earlier.
    let eos = StellarEos;
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let peak_t = |n: i32| -> f64 {
        let geom = Geometry::cube(n, 2e9, false);
        let ba = BoxArray::decompose(geom.domain(), n, 4);
        let mut state = MultiFab::local(ba, layout.ncomp(), 2);
        let c = 1e9;
        let sigma = 6e7; // narrow relative to the coarse dx
        for i in 0..state.nfabs() {
            let vb = state.valid_box(i);
            for iv in vb.iter() {
                let x = geom.cell_center(iv);
                let r2 = (x[0] - c).powi(2) + (x[1] - c).powi(2) + (x[2] - c).powi(2);
                // Volume-average the profile over the zone with 2-point
                // sampling per dim (mimics what initializing from finite
                // zones does to a narrow peak).
                let t = 1e7 + 3e9 * (-r2 / (2.0 * sigma * sigma)).exp();
                state.fab_mut(i).set(iv, StateLayout::TEMP, t);
                state.fab_mut(i).set(iv, StateLayout::RHO, 1e7);
            }
        }
        // Volume-averaged peak: compare the max zone-centre within dx/2 of
        // the true peak... simply return the max sampled T.
        state.max(StateLayout::TEMP)
    };
    let coarse = peak_t(16);
    let fine = peak_t(32);
    assert!(
        fine > coarse,
        "finer grid must resolve a hotter contact: {fine} vs {coarse}"
    );
    let _ = (eos, net);
}

#[test]
fn burning_blast_releases_energy_and_conserves_species_mass() {
    // Full multiphysics smoke test: hydro + gravity + reactions together.
    let eos: &'static StellarEos = Box::leak(Box::new(StellarEos));
    let net: &'static CBurn2 = Box::leak(Box::new(CBurn2::new()));
    let layout = StateLayout::new(net.nspec());
    let n = 16;
    let geom = Geometry::cube(n, 2e8, false);
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
    // Dense carbon ball with a hot core.
    let c = 1e8;
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let x = geom.cell_center(iv);
            let r = ((x[0] - c).powi(2) + (x[1] - c).powi(2) + (x[2] - c).powi(2)).sqrt();
            let rho = if r < 6e7 { 5e7 } else { 1e3 };
            let t = if r < 2.5e7 { 2.5e9 } else { 1e7 };
            let comp =
                exastro::microphysics::Composition::from_mass_fractions(net.species(), &[1.0, 0.0]);
            use exastro::microphysics::Eos;
            let r_eos = eos.eval_rt(rho, t, &comp);
            let fab = state.fab_mut(i);
            fab.set(iv, StateLayout::RHO, rho);
            fab.set(iv, StateLayout::TEMP, t);
            fab.set(iv, StateLayout::EDEN, rho * r_eos.e);
            fab.set(iv, StateLayout::EINT, rho * r_eos.e);
            fab.set(iv, layout.spec(0), rho);
        }
    }
    let mut castro = Castro::new(eos, net);
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        n_bins: 64,
    };
    castro.burn = Some(BurnOptions {
        min_temp: 5e8,
        min_dens: 1e5,
        ..Default::default()
    });
    castro.bc = BcSpec::outflow();

    let mass0 = castro.total_mass(&state, &geom);
    let ash0 = state.sum(layout.spec(1));
    let mut released = 0.0;
    for _ in 0..3 {
        let dt = castro.estimate_dt(&state, &geom);
        let (stats, _) = castro.advance_level(&mut state, &geom, dt).unwrap();
        released += stats.burn.energy_released;
    }
    assert!(released > 0.0, "hot carbon core must burn");
    assert!(state.sum(layout.spec(1)) > ash0, "ash produced");
    // Mass approximately conserved: with outflow boundaries + gravity the
    // ambient medium drifts slightly through the domain edge.
    assert!((castro.total_mass(&state, &geom) / mass0 - 1.0).abs() < 1e-3);
    // Species partition stays consistent with the density.
    for iv in geom.domain().iter().step_by(97) {
        let rho = state.value_at(iv, StateLayout::RHO);
        let sx: f64 = (0..2).map(|s| state.value_at(iv, layout.spec(s))).sum();
        assert!((sx / rho - 1.0).abs() < 1e-6, "zone {iv:?}");
    }
}

#[test]
fn legacy_and_flat_structures_agree_through_full_driver() {
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(16, 1.0, false);
    let params = SedovParams::default();
    let run = |structure: KernelStructure| -> Vec<f64> {
        let ba = BoxArray::decompose(geom.domain(), 8, 4);
        let mut state = MultiFab::local(ba, layout.ncomp(), 2);
        init_sedov(&mut state, &geom, &layout, &eos, &params);
        let mut castro = sedov_castro(&eos, &net);
        castro.hydro.structure = structure;
        for _ in 0..5 {
            let dt = castro.estimate_dt(&state, &geom).min(2e-3);
            castro.advance_level(&mut state, &geom, dt).unwrap();
        }
        geom.domain()
            .iter()
            .step_by(53)
            .map(|iv| state.value_at(iv, StateLayout::RHO))
            .collect()
    };
    let a = run(KernelStructure::Flat);
    let b = run(KernelStructure::Legacy);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y, "flat and legacy paths must agree bitwise");
    }
}

#[test]
fn sedov_amr_restart_is_bit_exact() {
    // The tentpole guarantee: kill a 2-level AMR Sedov run mid-way, restore
    // from a CheckpointManager checkpoint, and the resumed run's states are
    // bit-identical to the uninterrupted run's.
    use exastro::resilience::snapshot::digest_states;
    use exastro::resilience::{CheckpointManager, Clock};

    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(32, 1.0, false);
    let mut hier = Hierarchy::single_level(geom.clone(), 16, 4, 1, DistStrategy::RoundRobin);
    let tags: Vec<IntVect> = IndexBox::new(IntVect::splat(10), IntVect::splat(21))
        .iter()
        .collect();
    hier.regrid(
        0,
        &tags,
        2,
        &ClusterParams {
            max_size: 32,
            min_efficiency: 0.6,
            blocking_factor: 4,
        },
    );
    let mut states: Vec<MultiFab> = (0..2)
        .map(|l| hier.make_multifab(l, layout.ncomp(), 2))
        .collect();
    let params = SedovParams::default();
    for (l, state) in states.iter_mut().enumerate().take(2) {
        let g = hier.level(l).geom.clone();
        init_sedov(state, &g, &layout, &eos, &params);
    }
    let castro = sedov_castro(&eos, &net);
    let step_dt = |sts: &[MultiFab]| castro.estimate_dt(&sts[1], &hier.level(1).geom).min(2e-3);

    // Phase 1: 3 steps, then checkpoint through the manager.
    let mut time = 0.0;
    for _ in 0..3 {
        let dt = step_dt(&states);
        castro.advance_hierarchy(&hier, &mut states, dt).unwrap();
        time += dt;
    }
    let root = std::env::temp_dir().join(format!("exastro_amr_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mgr = CheckpointManager::new(&root).unwrap();
    let clock = Clock {
        step: 3,
        time,
        dt: 0.0,
    };
    let snap = exastro::castro::snapshot_hierarchy(&hier, &states, clock, &layout);
    mgr.write(&snap).unwrap();

    // Gold: the uninterrupted run continues 3 more steps.
    let mut gold = states.clone();
    for _ in 0..3 {
        let dt = step_dt(&gold);
        castro.advance_hierarchy(&hier, &mut gold, dt).unwrap();
    }

    // Resume from disk and run the same 3 steps.
    let restored = mgr.resume().unwrap();
    assert_eq!(restored.clock.step, 3);
    assert_eq!(restored.clock.time.to_bits(), time.to_bits());
    let (hier2, mut resumed) =
        exastro::castro::restore_hierarchy(&restored, 1, DistStrategy::RoundRobin, 16);
    assert_eq!(hier2.nlevels(), 2);
    for _ in 0..3 {
        let dt = castro
            .estimate_dt(&resumed[1], &hier2.level(1).geom)
            .min(2e-3);
        castro.advance_hierarchy(&hier2, &mut resumed, dt).unwrap();
    }
    assert_eq!(
        digest_states(&gold),
        digest_states(&resumed),
        "resumed 2-level run must match the uninterrupted run bit for bit"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn maestro_bubble_restart_is_bit_exact() {
    // Same guarantee for the low-Mach driver, whose base state lives
    // outside the MultiFab and rides in the snapshot's aux arrays.
    use exastro::maestro::{bubble_maestro, init_bubble, BubbleParams, LmLayout};
    use exastro::microphysics::StellarEos;
    use exastro::resilience::snapshot::{digest_multifab, Clock};
    use exastro::resilience::CheckpointManager;

    let n = 16;
    let geom = Geometry::new(
        IndexBox::cube(n),
        [0.0; 3],
        [3.6e7; 3],
        [true, true, false],
        exastro::amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let eos = StellarEos;
    let net = CBurn2::new();
    let layout = LmLayout::new(net.nspec());
    let mut state = MultiFab::local(ba, layout.ncomp(), 1);
    let base = init_bubble(
        &mut state,
        &geom,
        &layout,
        &eos,
        &net,
        &BubbleParams::default(),
    );
    let maestro = bubble_maestro(&eos, &net, base);

    let mut time = 0.0;
    for _ in 0..2 {
        let dt = maestro.estimate_dt(&state, &geom).min(4e-3);
        maestro.advance(&mut state, &geom, dt).unwrap();
        time += dt;
    }
    let root = std::env::temp_dir().join(format!("exastro_lm_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mgr = CheckpointManager::new(&root).unwrap();
    let clock = Clock {
        step: 2,
        time,
        dt: 0.0,
    };
    let snap = exastro::maestro::snapshot_run(&geom, &state, &maestro.base, clock, &layout);
    mgr.write(&snap).unwrap();

    // Gold continues uninterrupted.
    let mut gold = state.clone();
    for _ in 0..2 {
        let dt = maestro.estimate_dt(&gold, &geom).min(4e-3);
        maestro.advance(&mut gold, &geom, dt).unwrap();
    }

    // Resume: rebuild the base state from aux arrays, then re-enter the loop.
    let restored = mgr.resume().unwrap();
    let base2 = exastro::maestro::restore_base_state(&restored).expect("base state in snapshot");
    assert_eq!(base2.rho0, maestro.base.rho0);
    let maestro2 = bubble_maestro(&eos, &net, base2);
    let mut resumed = restored.levels[0].state.clone();
    for _ in 0..2 {
        let dt = maestro2.estimate_dt(&resumed, &geom).min(4e-3);
        maestro2.advance(&mut resumed, &geom, dt).unwrap();
    }
    assert_eq!(
        digest_multifab(&gold),
        digest_multifab(&resumed),
        "resumed low-Mach run must match the uninterrupted run bit for bit"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wd_collision_restart_is_bit_exact() {
    // The §V science-problem restart path: gravity + burning + strong
    // shocks, checkpointed mid-approach and resumed bit-exactly.
    use exastro::castro::{init_collision, BurnOptions, CollisionParams, T_IGNITION};
    use exastro::microphysics::StellarEos;
    use exastro::resilience::snapshot::digest_multifab;
    use exastro::resilience::{CheckpointManager, Clock, Snapshot};

    let eos: &'static StellarEos = Box::leak(Box::new(StellarEos));
    let net: &'static CBurn2 = Box::leak(Box::new(CBurn2::new()));
    let layout = StateLayout::new(net.nspec());
    let params = CollisionParams {
        v_approach: 6e8,
        separation: 3.0,
        ..Default::default()
    };
    let half_width = 2.5 * params.radius;
    let n = 16;
    let geom = Geometry::new(
        IndexBox::cube(n),
        [-half_width; 3],
        [half_width; 3],
        [false; 3],
        exastro::amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
    init_collision(&mut state, &geom, &layout, eos, net, &params);
    let mut castro = Castro::new(eos, net);
    castro.hydro.cfl = 0.2;
    castro.gravity = Gravity {
        mode: GravityMode::Monopole,
        n_bins: 256,
    };
    castro.burn = Some(BurnOptions {
        min_temp: 0.1 * T_IGNITION,
        min_dens: 1e4,
        ..Default::default()
    });

    for _ in 0..2 {
        let dt = castro.estimate_dt(&state, &geom);
        castro.advance_level(&mut state, &geom, dt).unwrap();
    }
    let root = std::env::temp_dir().join(format!("exastro_wd_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mgr = CheckpointManager::new(&root).unwrap();
    let snap = Snapshot::single_level(
        geom.clone(),
        state.clone(),
        Clock {
            step: 2,
            time: 0.0,
            dt: 0.0,
        },
        exastro::castro::variable_names(&layout),
    );
    mgr.write(&snap).unwrap();

    let mut gold = state.clone();
    for _ in 0..2 {
        let dt = castro.estimate_dt(&gold, &geom);
        castro.advance_level(&mut gold, &geom, dt).unwrap();
    }

    let restored = mgr.resume().unwrap();
    let mut resumed = restored.levels[0].state.clone();
    for _ in 0..2 {
        let dt = castro.estimate_dt(&resumed, &geom);
        castro.advance_level(&mut resumed, &geom, dt).unwrap();
    }
    assert_eq!(
        digest_multifab(&gold),
        digest_multifab(&resumed),
        "resumed WD-collision run must match the uninterrupted run bit for bit"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupted_checkpoint_falls_back_to_last_good() {
    // Bit-rot the newest checkpoint of a Sedov run: the manager must detect
    // it via the manifest, fall back to the previous checkpoint, and the
    // rerun from there must still reproduce the uninterrupted answer.
    use exastro::resilience::snapshot::digest_multifab;
    use exastro::resilience::{faults, CheckpointManager, Clock, Snapshot};

    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(16, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
    let params = SedovParams::default();
    init_sedov(&mut state, &geom, &layout, &eos, &params);
    let castro = sedov_castro(&eos, &net);
    let names = exastro::castro::variable_names(&layout);

    let root = std::env::temp_dir().join(format!("exastro_corrupt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mgr = CheckpointManager::new(&root).unwrap().keep_last(3);

    // Run 6 steps, checkpointing after steps 2 and 4; the state at step 6
    // is the gold answer.
    for step in 1..=6u64 {
        let dt = castro.estimate_dt(&state, &geom).min(2e-3);
        castro.advance_level(&mut state, &geom, dt).unwrap();
        if step == 2 || step == 4 {
            let snap = Snapshot::single_level(
                geom.clone(),
                state.clone(),
                Clock {
                    step,
                    time: 0.0,
                    dt,
                },
                names.clone(),
            );
            mgr.write(&snap).unwrap();
        }
    }
    let gold = digest_multifab(&state);

    // Silent single-bit corruption in the newest checkpoint's payload.
    let chk4 = root.join(CheckpointManager::checkpoint_name(4));
    faults::flip_bit(&chk4.join("Level_00/fab_00000.bin"), 128, 5).unwrap();

    // The manager detects it and falls back to step 2.
    let restored = mgr.resume().unwrap();
    assert_eq!(
        restored.clock.step, 2,
        "must fall back past the corrupt one"
    );
    assert!(mgr.stats().corrupt_detected >= 1);

    // Redo steps 3..6 from the fallback: same final answer.
    let mut resumed = restored.levels[0].state.clone();
    for _ in 3..=6 {
        let dt = castro.estimate_dt(&resumed, &geom).min(2e-3);
        castro.advance_level(&mut resumed, &geom, dt).unwrap();
    }
    assert_eq!(digest_multifab(&resumed), gold);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn checkpoint_restart_resumes_identically() {
    // Run a Sedov blast, checkpoint mid-run, restart from disk, and verify
    // the continued run matches the uninterrupted one bitwise.
    let eos = GammaLaw::monatomic();
    let net = CBurn2::new();
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(16, 1.0, false);
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
    let params = SedovParams::default();
    init_sedov(&mut state, &geom, &layout, &eos, &params);
    let castro = sedov_castro(&eos, &net);

    // Phase 1: 4 steps.
    for _ in 0..4 {
        let dt = castro.estimate_dt(&state, &geom).min(2e-3);
        castro.advance_level(&mut state, &geom, dt).unwrap();
    }
    // Checkpoint.
    let dir = std::env::temp_dir().join(format!("exastro_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let names: Vec<String> = (0..layout.ncomp()).map(|c| format!("c{c}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    exastro::amr::write_checkpoint(&dir, &state, &geom, 0.0, &name_refs).unwrap();

    // Continue the original.
    let mut gold = state.clone();
    for _ in 0..3 {
        let dt = castro.estimate_dt(&gold, &geom).min(2e-3);
        castro.advance_level(&mut gold, &geom, dt).unwrap();
    }
    // Restart from disk and run the same 3 steps.
    let ck = exastro::amr::read_checkpoint(&dir).unwrap();
    let mut resumed = ck.state;
    assert_eq!(ck.geom.domain(), geom.domain());
    for _ in 0..3 {
        let dt = castro.estimate_dt(&resumed, &geom).min(2e-3);
        castro.advance_level(&mut resumed, &geom, dt).unwrap();
    }
    for iv in geom.domain().iter().step_by(31) {
        for c in 0..layout.ncomp() {
            assert_eq!(
                gold.value_at(iv, c),
                resumed.value_at(iv, c),
                "restart mismatch at {iv:?} comp {c}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dense carbon ball with a hot core: the burning-blast fixture shared by
/// the failure-recovery tests below.
fn hot_ball_setup() -> (
    Geometry,
    MultiFab,
    Castro<'static>,
    exastro::castro::StateLayout,
) {
    let eos: &'static StellarEos = Box::leak(Box::new(StellarEos));
    let net: &'static CBurn2 = Box::leak(Box::new(CBurn2::new()));
    let layout = StateLayout::new(net.nspec());
    let geom = Geometry::cube(16, 2e8, false);
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let mut state = MultiFab::local(ba, layout.ncomp(), 2);
    let c = 1e8;
    for i in 0..state.nfabs() {
        let vb = state.valid_box(i);
        for iv in vb.iter() {
            let x = geom.cell_center(iv);
            let r = ((x[0] - c).powi(2) + (x[1] - c).powi(2) + (x[2] - c).powi(2)).sqrt();
            let rho = if r < 6e7 { 5e7 } else { 1e3 };
            let t = if r < 2.5e7 { 2.2e9 } else { 1e7 };
            let comp =
                exastro::microphysics::Composition::from_mass_fractions(net.species(), &[1.0, 0.0]);
            use exastro::microphysics::Eos;
            let r_eos = eos.eval_rt(rho, t, &comp);
            let fab = state.fab_mut(i);
            fab.set(iv, StateLayout::RHO, rho);
            fab.set(iv, StateLayout::TEMP, t);
            fab.set(iv, StateLayout::EDEN, rho * r_eos.e);
            fab.set(iv, StateLayout::EINT, rho * r_eos.e);
            fab.set(iv, layout.spec(0), rho);
        }
    }
    let mut castro = Castro::new(eos, net);
    castro.bc = BcSpec::outflow();
    castro.burn = Some(BurnOptions {
        min_temp: 5e8,
        min_dens: 1e5,
        ..Default::default()
    });
    (geom, state, castro, layout)
}

#[test]
fn injected_burn_faults_recover_in_full_driver() {
    use exastro::microphysics::{BdfErrorKind, BurnFaultConfig};
    let (geom, mut state, mut castro, layout) = hot_ball_setup();
    castro.burn.as_mut().unwrap().faults = Some(BurnFaultConfig {
        seed: 42,
        rate: 1.0,
        rungs_to_fail: 1,
        error: BdfErrorKind::MaxSteps,
    });
    let dt = castro.estimate_dt(&state, &geom).min(1e-6);
    let (stats, dt_taken) = castro.advance_level_safe(&mut state, &geom, dt).unwrap();
    // Every burning zone failed once and was rescued — without rejecting
    // the step.
    assert_eq!(dt_taken, dt, "no step rejection expected");
    assert!(stats.burn.zones > 0);
    assert_eq!(stats.burn.recovered, stats.burn.zones);
    assert_eq!(stats.burn.retries, stats.burn.zones);
    // The recovered state is physical: the driver's own validator plus an
    // explicit species-sum spot check.
    castro
        .validate_state(&state, castro.recovery.species_tol)
        .unwrap();
    for iv in geom.domain().iter().step_by(97) {
        let rho = state.value_at(iv, StateLayout::RHO);
        let sx: f64 = (0..2).map(|s| state.value_at(iv, layout.spec(s))).sum();
        assert!((sx / rho - 1.0).abs() < 1e-6, "zone {iv:?}");
    }
}

#[test]
fn unrecoverable_step_restores_state_and_writes_emergency_checkpoint() {
    use exastro::microphysics::{BdfErrorKind, BurnFaultConfig};
    use exastro::resilience::CheckpointManager;
    let (geom, mut state, mut castro, layout) = hot_ball_setup();
    castro.burn.as_mut().unwrap().faults = Some(BurnFaultConfig {
        seed: 11,
        rate: 1.0,
        rungs_to_fail: 99, // deeper than the ladder: never recovers
        error: BdfErrorKind::SingularMatrix,
    });
    let dir = std::env::temp_dir().join(format!("exastro-drv-emrg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    castro.recovery.max_rejections = 2;
    castro.recovery = castro.recovery.clone().with_emergency_dir(&dir);
    let before = state.clone();
    let err = castro
        .advance_level_safe(&mut state, &geom, 1e-6)
        .unwrap_err();
    // Structured failure, not a panic: the rejection loop ran dry.
    assert_eq!(err.rejections, 2);
    assert!(err.dt_floor < 1e-6);
    match &err.error {
        exastro::castro::StepError::Burn(fails) => {
            assert!(!fails.is_empty());
            assert_eq!(fails[0].attempts, 4, "all four ladder rungs tried");
        }
        other => panic!("expected burn failures, got {other}"),
    }
    // The state was restored bit-exactly to its pre-step contents.
    for iv in geom.domain().iter().step_by(31) {
        for c in 0..layout.ncomp() {
            assert_eq!(
                state.value_at(iv, c).to_bits(),
                before.value_at(iv, c).to_bits(),
                "state not restored at {iv:?} comp {c}"
            );
        }
    }
    // The emergency checkpoint landed and resumes to that restored state.
    let chk = err
        .emergency_checkpoint
        .clone()
        .expect("checkpoint written");
    assert!(chk.is_dir());
    let snap = CheckpointManager::new(&dir).unwrap().resume().unwrap();
    assert_eq!(
        snap.levels[0]
            .state
            .value_at(geom.domain().lo(), StateLayout::RHO),
        state.value_at(geom.domain().lo(), StateLayout::RHO)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bubble_with_injected_faults_completes_through_safe_driver() {
    use exastro::maestro::{
        bubble_diagnostics, bubble_maestro, init_bubble, BubbleParams, LmLayout,
    };
    use exastro::microphysics::{BdfErrorKind, BurnFaultConfig};
    let eos: &'static StellarEos = Box::leak(Box::new(StellarEos));
    let net: &'static CBurn2 = Box::leak(Box::new(CBurn2::new()));
    let geom = Geometry::new(
        IndexBox::cube(16),
        [0.0; 3],
        [3.6e7; 3],
        [true, true, false],
        exastro::amr::CoordSys::Cartesian,
    );
    let ba = BoxArray::decompose(geom.domain(), 8, 4);
    let layout = LmLayout::new(2);
    let mut state = MultiFab::local(ba, layout.ncomp(), 1);
    let base = init_bubble(
        &mut state,
        &geom,
        &layout,
        eos,
        net,
        &BubbleParams::default(),
    );
    let mut maestro = bubble_maestro(eos, net, base);
    maestro.burn_faults = Some(BurnFaultConfig {
        seed: 3,
        rate: 1.0,
        rungs_to_fail: 1,
        error: BdfErrorKind::StepUnderflow { t: 0.0 },
    });
    let mut recovered = 0;
    for _ in 0..2 {
        let dt = maestro.estimate_dt(&state, &geom).min(5e-3);
        let (stats, _) = maestro.advance_safe(&mut state, &geom, dt).unwrap();
        recovered += stats.burn_recovered;
        assert_eq!(stats.burn_retries, stats.burn_recovered);
    }
    assert!(recovered > 0, "bubble zones must have burned and recovered");
    maestro
        .validate_state(&state, maestro.recovery.species_tol)
        .unwrap();
    let d = bubble_diagnostics(&state, &geom, &layout, 6e8);
    assert!(d.max_temp.is_finite() && d.max_temp > 0.0);
}
